// Package invsketch implements a bucketized invertible sketch in the
// spirit of Tang, Huang & Lee ("A Fast and Compact Invertible Sketch
// for Network-Wide Heavy Flow Detection"): every bucket carries, next
// to its change counter, enough folded key material to reconstruct the
// key that dominates the bucket directly — turning offender-key
// recovery (the INFERENCE of the reversible sketch) into a single
// O(buckets) decode pass instead of a reverse-hashing search over the
// modular-hash candidate space.
//
// A bucket holds KeyBits+2 int32 counters:
//
//	field 0            count     Σ v            (the k-ary change counter)
//	field 1            fpsum     Σ v·fp(key)    (8-bit fingerprint verifier)
//	fields 2..KeyBits+1 bit i    Σ v·bit_i(key) (group-tested key material)
//
// Every field is a plain sum of per-update contributions, so the whole
// structure is linear: bucket-wise Σ cᵢ·Sᵢ (COMBINE) is exact, EWMA
// forecasting over snapshots commutes with it, and weighted NetFlow
// updates equal repeated unit updates — the same properties the rest of
// HiFIND already leans on. A pure XOR fold of the key would be smaller
// but breaks under weighted and negative updates (SYN/ACK subtraction)
// and under COMBINE coefficients; counter-folded bits survive all three.
//
// Decoding a bucket whose count stands out: bit i of the key is 1 iff
// the bit-i counter holds the majority of the bucket's count (a heavy
// changer drowns the noise of the light keys sharing the bucket), and
// the decoded key is accepted only if it re-hashes to the bucket it was
// decoded from and its fingerprint matches fpsum/count. See decode.go.
package invsketch

import (
	"encoding/binary"
	"fmt"

	"github.com/hifind/hifind/internal/sketch"
)

// fingerprintSpace is the range of the per-key verifier fingerprint
// stored in field 1. 8 bits keeps the fpsum counter far from overflow
// under int32 counts while still rejecting 255/256 of decode garbage.
const fingerprintSpace = 256

// Params configures an invertible sketch. Unlike the reversible sketch
// there is no word structure — bucket indices come from ordinary
// 4-universal hashing, because decoding never searches the key space.
type Params struct {
	KeyBits int // key width folded into each bucket (≤64)
	Stages  int // H, independent hash tables
	Buckets int // K, buckets per stage; power of two
}

// Params48 returns the default geometry for the 48-bit connection keys
// ({SIP,Dport}, {DIP,Dport}).
func Params48() Params { return Params{KeyBits: 48, Stages: 3, Buckets: 1 << 12} }

// Params64 returns the default geometry for the 64-bit {SIP,DIP} key.
func Params64() Params { return Params{KeyBits: 64, Stages: 3, Buckets: 1 << 12} }

// Fields returns the number of int32 counters per bucket.
func (p Params) Fields() int { return p.KeyBits + 2 }

// Validate reports whether the parameters describe a buildable sketch.
func (p Params) Validate() error {
	if p.KeyBits < 1 || p.KeyBits > 64 {
		return fmt.Errorf("invsketch: key width %d out of range [1,64]", p.KeyBits)
	}
	if p.Stages < 1 || p.Stages > 15 {
		return fmt.Errorf("invsketch: stages %d out of [1,15]", p.Stages)
	}
	if !sketch.IsPowerOfTwo(p.Buckets) || p.Buckets < 2 {
		return fmt.Errorf("invsketch: buckets %d must be a power of two ≥ 2", p.Buckets)
	}
	return nil
}

// Sketch is an invertible sketch. It is not safe for concurrent use;
// like the other HiFIND structures, the pipeline owns one per monitored
// key type and serializes access.
type Sketch struct {
	params Params
	seed   uint64
	hash   []sketch.Poly4 // per-stage bucket hash
	fph    sketch.Poly4   // fingerprint hash, shared across stages
	// rows[j] holds stage j's buckets as Buckets×Fields contiguous
	// int32 counters: bucket b occupies rows[j][b*Fields:(b+1)*Fields].
	rows    [][]int32
	total   int64
	scratch []float64 // per-stage estimates, reused across Estimate calls
}

// New builds an empty invertible sketch. Equal params and seed ⇒
// identical hashing ⇒ combinable across routers. Construction allocates
// by design and runs at setup or interval boundaries.
//
//hifind:cold
func New(params Params, seed uint64) (*Sketch, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	s := &Sketch{
		params:  params,
		seed:    seed,
		hash:    make([]sketch.Poly4, params.Stages),
		rows:    make([][]int32, params.Stages),
		scratch: make([]float64, params.Stages),
	}
	state := seed
	for j := range s.hash {
		s.hash[j] = sketch.NewPoly4(&state)
	}
	s.fph = sketch.NewPoly4(&state)
	fields := params.Fields()
	backing := make([]int32, params.Stages*params.Buckets*fields)
	rowLen := params.Buckets * fields
	for j := range s.rows {
		s.rows[j] = backing[j*rowLen : (j+1)*rowLen : (j+1)*rowLen]
	}
	return s, nil
}

// Params returns the sketch geometry.
func (s *Sketch) Params() Params { return s.params }

// Seed returns the hash seed.
func (s *Sketch) Seed() uint64 { return s.seed }

// BucketIndex returns the bucket a key maps to in one stage (for tests
// and for reading derived grids). Keys must fit in the declared
// KeyBits; HiFIND's packed connection keys do by construction.
func (s *Sketch) BucketIndex(stage int, key uint64) int {
	return int(s.hash[stage].HashRange(key, s.params.Buckets))
}

// Fingerprint returns the key's 8-bit verifier fingerprint.
func (s *Sketch) Fingerprint(key uint64) int32 {
	return int32(s.fph.HashRange(key, fingerprintSpace))
}

// apply folds one weighted update into a bucket: count, fingerprint sum
// and every key-bit counter. One contiguous Fields-sized write burst.
func (s *Sketch) apply(stage int, bucket uint32, key uint64, fp, v int32) {
	fields := s.params.KeyBits + 2
	base := int(bucket) * fields
	row := s.rows[stage][base : base+fields : base+fields]
	row[0] += v
	row[1] += v * fp
	k := key
	for i := 2; i < fields; i++ {
		row[i] += v * int32(k&1)
		k >>= 1
	}
}

// Update adds v to the key's bucket in every stage (UPDATE), folding
// the key material in alongside the count.
func (s *Sketch) Update(key uint64, v int32) {
	fp := s.Fingerprint(key)
	for j := 0; j < s.params.Stages; j++ {
		s.apply(j, s.hash[j].HashRange(key, s.params.Buckets), key, fp, v)
	}
	s.total += int64(v)
}

// Plan caches the hash work of one key — the per-stage bucket indices
// plus the fingerprint — and carries the key itself for the bit fold.
// Sized for the sketch that created it; holds no counters, so reuse
// across calls is free and allocation-free (the PR-5 plan convention).
type Plan struct {
	idx []uint32
	key uint64
	fp  int32
}

// NewPlan returns a reusable bucket plan sized for this sketch. The
// single allocation happens here; FillPlan and UpdateAt never allocate.
func (s *Sketch) NewPlan() *Plan {
	return &Plan{idx: make([]uint32, s.params.Stages)}
}

// FillPlan computes the bucket index the key selects in every stage
// from its precomputed polynomial powers (shared with every other
// structure hashing the same key) and caches the fingerprint. The
// indices and fingerprint are bit-identical to the ones Update derives:
// HashRangePow equals HashRange for the key the powers came from.
func (s *Sketch) FillPlan(key uint64, kp sketch.KeyPowers, p *Plan) {
	for j := range s.hash {
		p.idx[j] = s.hash[j].HashRangePow(kp, s.params.Buckets)
	}
	p.key = key
	p.fp = int32(s.fph.HashRangePow(kp, fingerprintSpace))
}

// UpdateAt adds v to the planned bucket of every stage — UPDATE with
// the hashing already paid for.
func (s *Sketch) UpdateAt(p *Plan, v int32) {
	for j, ix := range p.idx {
		s.apply(j, ix, p.key, p.fp, v)
	}
	s.total += int64(v)
}

// Snapshot deep-copies the counters in EWMA geometry: Stages rows of
// Buckets×Fields values, ready for timeseries forecasting.
func (s *Sketch) Snapshot() [][]int32 {
	rowLen := s.params.Buckets * s.params.Fields()
	out := make([][]int32, s.params.Stages)
	backing := make([]int32, s.params.Stages*rowLen)
	for j := range s.rows {
		row := backing[j*rowLen : (j+1)*rowLen : (j+1)*rowLen]
		copy(row, s.rows[j])
		out[j] = row
	}
	return out
}

// Total returns the sum of all update values.
func (s *Sketch) Total() int64 { return s.total }

// Occupancy returns the fraction of buckets with a nonzero change
// counter, averaged over stages — the saturation gauge the telemetry
// layer samples at rotation. High occupancy warns that bit-majority
// decoding will see more multi-key buckets.
func (s *Sketch) Occupancy() float64 {
	if s == nil {
		return 0
	}
	fields := s.params.Fields()
	var nonzero, total int
	for j := range s.rows {
		row := s.rows[j]
		for b := 0; b < s.params.Buckets; b++ {
			total++
			if row[b*fields] != 0 {
				nonzero++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(nonzero) / float64(total)
}

// Reset zeroes the counters for the next interval, keeping the hashing.
func (s *Sketch) Reset() {
	for j := range s.rows {
		row := s.rows[j]
		for i := range row {
			row[i] = 0
		}
	}
	s.total = 0
}

// Compatible reports whether two sketches can be combined.
func (s *Sketch) Compatible(o *Sketch) bool {
	return s.params == o.params && s.seed == o.seed
}

// Combine computes Σ cᵢ·Sᵢ over compatible invertible sketches
// (COMBINE). Every bucket field is a plain sum, so merging is exact
// bucket-wise addition — the multi-router aggregation requirement.
func Combine(coeffs []int32, sketches []*Sketch) (*Sketch, error) {
	if len(sketches) == 0 {
		return nil, fmt.Errorf("invsketch: combine of zero sketches")
	}
	if len(coeffs) != len(sketches) {
		return nil, fmt.Errorf("invsketch: %d coefficients for %d sketches", len(coeffs), len(sketches))
	}
	out, err := New(sketches[0].params, sketches[0].seed)
	if err != nil {
		return nil, err
	}
	for n, in := range sketches {
		if !out.Compatible(in) {
			return nil, fmt.Errorf("invsketch: operand %d incompatible", n)
		}
		c := coeffs[n]
		for j := range out.rows {
			dst, src := out.rows[j], in.rows[j]
			for i := range dst {
				dst[i] += c * src[i]
			}
		}
		out.total += int64(c) * in.total
	}
	return out, nil
}

// MemoryBytes returns the counter footprint.
func (s *Sketch) MemoryBytes() int {
	return s.params.Stages * s.params.Buckets * s.params.Fields() * 4
}

const sketchMagic = uint32(0x48694953) // "HiIS"

// MarshalBinary serializes counters plus identifying parameters. The
// layout is a fixed-order flat array — deterministic byte-for-byte for
// identical state, the checkpoint-interchange requirement.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	rowLen := s.params.Buckets * s.params.Fields()
	buf := make([]byte, 0, 36+4*s.params.Stages*rowLen)
	buf = binary.LittleEndian.AppendUint32(buf, sketchMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.params.KeyBits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.params.Stages))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.params.Buckets))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.total))
	for j := range s.rows {
		for _, c := range s.rows[j] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
		}
	}
	return buf, nil
}

// UnmarshalBinary reverses MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 32 {
		return fmt.Errorf("invsketch: truncated header (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != sketchMagic {
		return fmt.Errorf("invsketch: bad magic %#x", binary.LittleEndian.Uint32(data))
	}
	params := Params{
		KeyBits: int(binary.LittleEndian.Uint32(data[4:])),
		Stages:  int(binary.LittleEndian.Uint32(data[8:])),
		Buckets: int(binary.LittleEndian.Uint32(data[12:])),
	}
	if err := params.Validate(); err != nil {
		return fmt.Errorf("invsketch: unmarshal: %w", err)
	}
	seed := binary.LittleEndian.Uint64(data[16:])
	total := int64(binary.LittleEndian.Uint64(data[24:]))
	rowLen := params.Buckets * params.Fields()
	want := 32 + 4*params.Stages*rowLen
	if len(data) != want {
		return fmt.Errorf("invsketch: body length %d, want %d", len(data), want)
	}
	fresh, err := New(params, seed)
	if err != nil {
		return fmt.Errorf("invsketch: unmarshal: %w", err)
	}
	off := 32
	for j := range fresh.rows {
		row := fresh.rows[j]
		for i := range row {
			row[i] = int32(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	fresh.total = total
	*s = *fresh
	return nil
}
