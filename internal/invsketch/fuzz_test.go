package invsketch

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzInvertibleDecode drives the bucket decode with arbitrary update
// streams on a small geometry and checks its output invariants: no
// panic, every estimate at or above the threshold, keys within the key
// space, deduplicated, sorted largest-estimate first, decode agreeing
// with point estimation, and the marshal round trip byte-identical.
func FuzzInvertibleDecode(f *testing.F) {
	// Seeds: empty stream, one heavy key, a heavy key plus background
	// noise, and negative (SYN/ACK-style) updates.
	f.Add([]byte{})
	one := make([]byte, 0, 64)
	for i := 0; i < 20; i++ {
		one = binary.BigEndian.AppendUint16(one, 0xbeef)
		one = append(one, 5)
	}
	f.Add(one)
	mixed := append([]byte(nil), one...)
	for i := 0; i < 10; i++ {
		mixed = binary.BigEndian.AppendUint16(mixed, uint16(i*257))
		mixed = append(mixed, 1)
	}
	f.Add(mixed)
	neg := append([]byte(nil), one...)
	for i := 0; i < 5; i++ {
		neg = binary.BigEndian.AppendUint16(neg, 0xbeef)
		neg = append(neg, byte(0x100-2)) // v = −2
	}
	f.Add(neg)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Small geometry keeps each fuzz execution fast: 16-bit keys,
		// 2 stages of 16 buckets (18 fields per bucket).
		params := Params{KeyBits: 16, Stages: 2, Buckets: 16}
		s, err := New(params, 0x5eed)
		if err != nil {
			t.Fatal(err)
		}
		// Consume 3 bytes per update: 2 key bytes, 1 signed value byte.
		for len(data) >= 3 {
			key := uint64(binary.BigEndian.Uint16(data))
			v := int32(int8(data[2]))
			s.Update(key, v)
			data = data[3:]
		}

		const threshold = 8.0
		got, err := s.DecodeCounts(threshold, DecodeOptions{MaxKeys: 256})
		if err != nil {
			t.Fatalf("DecodeCounts: %v", err)
		}
		keySpace := uint64(1) << uint(params.KeyBits)
		seen := make(map[uint64]bool, len(got))
		for i, ke := range got {
			if ke.Key >= keySpace {
				t.Fatalf("key %#x outside the %d-bit key space", ke.Key, params.KeyBits)
			}
			if ke.Estimate < threshold {
				t.Fatalf("key %#x returned with estimate %v < threshold %v", ke.Key, ke.Estimate, threshold)
			}
			if seen[ke.Key] {
				t.Fatalf("key %#x returned twice", ke.Key)
			}
			seen[ke.Key] = true
			if i > 0 && ke.Estimate > got[i-1].Estimate {
				t.Fatalf("results not sorted: estimate %v after %v", ke.Estimate, got[i-1].Estimate)
			}
			// Decode must agree with ESTIMATE on the keys it reports.
			if est := s.Estimate(ke.Key); est != ke.Estimate {
				t.Fatalf("key %#x: decode estimate %v, point estimate %v", ke.Key, ke.Estimate, est)
			}
		}

		// Serialization survives arbitrary counter states.
		blob, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		var loaded Sketch
		if err := loaded.UnmarshalBinary(blob); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		blob2, err := loaded.MarshalBinary()
		if err != nil {
			t.Fatalf("re-MarshalBinary: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatal("marshal round trip not byte-identical")
		}
	})
}
