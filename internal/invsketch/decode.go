package invsketch

import (
	"fmt"
	"sort"

	"github.com/hifind/hifind/internal/sketch"
)

// KeyEstimate is one key recovered by Decode with its estimated value.
type KeyEstimate struct {
	Key      uint64
	Estimate float64
}

// DecodeOptions tunes the bucket decode. The zero value asks for the
// defaults documented on each field.
type DecodeOptions struct {
	// BucketFraction scales the threshold for the per-bucket pre-filter:
	// a bucket is decoded when its change counter is at least
	// BucketFraction×threshold. Below 1 it tolerates negative collision
	// noise dragging a true key's bucket under the nominal threshold;
	// the garbage the looser filter admits dies at the estimate check.
	// Default: 0.5.
	BucketFraction float64
	// FingerprintSlack is the base tolerance of the fingerprint
	// verifier. A bucket's fpsum/count ratio may deviate from the
	// decoded key's fingerprint by at most
	//
	//	FingerprintSlack + 255·max(0, count−estimate)/count
	//
	// — the second term is the exact worst-case perturbation the
	// bucket's estimated noise share can cause (each noise unit moves
	// fpsum by at most 255), so true keys are never rejected; the base
	// term absorbs estimator error. Exact single-key buckets land at 0.
	// Default 8.
	FingerprintSlack float64
	// MaxKeys caps the number of keys returned (largest estimates
	// first). Default: 4096.
	MaxKeys int
	// Verify, when set, is consulted for every decoded key before it is
	// accepted — the same hook revsketch.InferenceOptions offers, so
	// HiFIND's verifier-sketch check plugs into either engine.
	Verify func(key uint64, estimate float64) bool
}

func (o DecodeOptions) withDefaults() DecodeOptions {
	if o.BucketFraction == 0 {
		o.BucketFraction = 0.5
	}
	if o.FingerprintSlack == 0 {
		o.FingerprintSlack = 8
	}
	if o.MaxKeys == 0 {
		o.MaxKeys = 4096
	}
	return o
}

// Decode recovers heavy-change keys directly from the buckets of an
// external value grid sharing the sketch's snapshot geometry (Stages
// rows of Buckets×Fields values — in HiFIND the EWMA forecast-error
// grid), returning every key whose estimated change is at least
// threshold, largest first.
//
// One pass over the buckets: a bucket whose change counter clears the
// pre-filter has its key read out bit by bit (bit i is 1 iff the bit-i
// counter holds the majority of the count — the heavy changer drowns
// the light keys sharing the bucket), then the candidate must (a)
// re-hash to the bucket it was decoded from, (b) re-estimate above the
// threshold under the k-ary mean-corrected median estimator, and (c)
// match the bucket's fingerprint sum within the noise-adaptive slack.
// Collision garbage fails (a) with probability 1−1/Buckets; whatever
// survives faces (b), (c) and the caller's Verify. Work is
// O(Stages × Buckets × KeyBits) with no search — the whole point
// versus reverse-hashing INFERENCE.
func (s *Sketch) Decode(g sketch.Grid, threshold float64, opts DecodeOptions) ([]KeyEstimate, error) {
	fields := s.params.Fields()
	if g.Stages() != s.params.Stages || g.Buckets() != s.params.Buckets*fields {
		return nil, fmt.Errorf("invsketch: decode grid %dx%d does not match sketch %dx%d",
			g.Stages(), g.Buckets(), s.params.Stages, s.params.Buckets*fields)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("invsketch: decode threshold %v must be positive", threshold)
	}
	opts = opts.withDefaults()
	bucketFloor := opts.BucketFraction * threshold
	totals := CountTotals(g, s.params)
	seen := make(map[uint64]bool)
	var out []KeyEstimate
	for j := 0; j < s.params.Stages; j++ {
		row := g[j]
		for b := 0; b < s.params.Buckets; b++ {
			base := b * fields
			count := row[base]
			if count < bucketFloor {
				continue
			}
			// Bit-majority key readout.
			var key uint64
			for i := 0; i < s.params.KeyBits; i++ {
				if 2*row[base+2+i] > count {
					key |= uint64(1) << uint(i)
				}
			}
			if s.BucketIndex(j, key) != b {
				continue // decoded bits don't hash here: multi-key garbage
			}
			if seen[key] {
				continue
			}
			est := s.EstimateGrid(g, totals, key)
			if est < threshold {
				continue
			}
			noise := count - est
			if noise < 0 {
				noise = 0
			}
			allowed := opts.FingerprintSlack + 255*noise/count
			fpRatio := row[base+1] / count
			if d := fpRatio - float64(s.Fingerprint(key)); d > allowed || d < -allowed {
				continue // fingerprint sum disagrees: corrupted readout
			}
			if opts.Verify != nil && !opts.Verify(key, est) {
				continue
			}
			seen[key] = true
			out = append(out, KeyEstimate{Key: key, Estimate: est})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Estimate > out[b].Estimate {
			return true
		}
		if out[a].Estimate < out[b].Estimate {
			return false
		}
		return out[a].Key < out[b].Key // deterministic tie-break
	})
	if len(out) > opts.MaxKeys {
		out = out[:opts.MaxKeys]
	}
	return out, nil
}

// DecodeCounts runs Decode directly over the sketch's own counters, for
// callers that detect on raw per-interval values instead of forecast
// errors (tests, fuzzing, simple deployments).
func (s *Sketch) DecodeCounts(threshold float64, opts DecodeOptions) ([]KeyEstimate, error) {
	g := sketch.NewGrid(s.params.Stages, s.params.Buckets*s.params.Fields())
	if err := g.AddCounts(s.rows, 1); err != nil {
		return nil, err
	}
	return s.Decode(g, threshold, opts)
}

// CountTotals returns each stage's sum over the change-counter fields
// of a snapshot-geometry grid, for use with EstimateGrid. Fingerprint
// and bit fields are excluded: the k-ary estimator corrects against the
// stage's total change, not the folded key material.
func CountTotals(g sketch.Grid, p Params) []float64 {
	fields := p.Fields()
	t := make([]float64, g.Stages())
	for j := range t {
		row := g[j]
		var sum float64
		for b := 0; b < p.Buckets; b++ {
			sum += row[b*fields]
		}
		t[j] = sum
	}
	return t
}

// EstimateGrid estimates a key's change from a snapshot-geometry grid
// with the k-ary mean-corrected median estimator over the change
// counters — the same estimator the reversible sketch uses, so the two
// engines' magnitudes are directly comparable.
func (s *Sketch) EstimateGrid(g sketch.Grid, totals []float64, key uint64) float64 {
	fields := s.params.Fields()
	k := float64(s.params.Buckets)
	est := s.scratch
	for j := 0; j < s.params.Stages; j++ {
		c := g[j][s.BucketIndex(j, key)*fields]
		est[j] = (c - totals[j]/k) / (1 - 1/k)
	}
	return sketch.MedianInPlace(est)
}

// Estimate reconstructs the key's value from the sketch's own counters.
func (s *Sketch) Estimate(key uint64) float64 {
	k := float64(s.params.Buckets)
	fields := s.params.Fields()
	est := s.scratch
	for j := 0; j < s.params.Stages; j++ {
		c := float64(s.rows[j][s.BucketIndex(j, key)*fields])
		est[j] = (c - float64(s.total)/k) / (1 - 1/k)
	}
	return sketch.MedianInPlace(est)
}
