package invsketch

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/hifind/hifind/internal/sketch"
)

func testParams() Params { return Params{KeyBits: 48, Stages: 3, Buckets: 1 << 8} }

func newTestSketch(t *testing.T, p Params, seed uint64) *Sketch {
	t.Helper()
	s, err := New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDecodeRecoversHeavyKeys: heavy keys planted among light noise come
// back from DecodeCounts with the right magnitudes, and nothing else
// survives verification.
func TestDecodeRecoversHeavyKeys(t *testing.T) {
	p := testParams()
	s := newTestSketch(t, p, 0x5eed)
	keyMask := uint64(1)<<uint(p.KeyBits) - 1
	rng := rand.New(rand.NewSource(7))
	heavy := map[uint64]int32{}
	for len(heavy) < 20 {
		heavy[rng.Uint64()&keyMask] = int32(500 + rng.Intn(500))
	}
	for k, v := range heavy {
		s.Update(k, v)
	}
	for i := 0; i < 2000; i++ {
		s.Update(rng.Uint64()&keyMask, int32(1+rng.Intn(3)))
	}
	got, err := s.DecodeCounts(250, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]float64{}
	for _, ke := range got {
		found[ke.Key] = ke.Estimate
	}
	for k, v := range heavy {
		est, ok := found[k]
		if !ok {
			t.Errorf("heavy key %#x (value %d) not decoded", k, v)
			continue
		}
		// Loose bounds: with 20 heavy keys in 256 buckets the k-ary
		// median occasionally absorbs a heavy-heavy collision.
		if est < float64(v)*0.5 || est > float64(v)*2.5 {
			t.Errorf("key %#x: estimate %.1f far from true value %d", k, est, v)
		}
	}
	for k := range found {
		if _, ok := heavy[k]; !ok {
			t.Errorf("spurious key %#x decoded with estimate %.1f", k, found[k])
		}
	}
}

// TestDecodeOrderingDeterministic: results are sorted by estimate
// descending with key ascending tie-break, and repeated decodes agree.
func TestDecodeOrderingDeterministic(t *testing.T) {
	s := newTestSketch(t, testParams(), 0x0e0e)
	for k := uint64(1); k <= 30; k++ {
		s.Update(k*0x9e3779b9, int32(100*k))
	}
	a, err := s.DecodeCounts(50, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.DecodeCounts(50, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no keys decoded")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decode not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && (a[i].Estimate > a[i-1].Estimate ||
			(a[i].Estimate == a[i-1].Estimate && a[i].Key <= a[i-1].Key)) {
			t.Fatalf("ordering violated at %d: %+v after %+v", i, a[i], a[i-1])
		}
	}
}

// TestDecodeMaxKeys: the cap keeps the largest estimates.
func TestDecodeMaxKeys(t *testing.T) {
	s := newTestSketch(t, testParams(), 0xcafe)
	for k := uint64(1); k <= 40; k++ {
		s.Update(k<<8, int32(100+10*k))
	}
	all, err := s.DecodeCounts(50, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := s.DecodeCounts(50, DecodeOptions{MaxKeys: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 5 {
		t.Fatalf("MaxKeys 5 returned %d keys", len(capped))
	}
	for i := range capped {
		if capped[i] != all[i] {
			t.Fatalf("capped result %d = %+v, want prefix of full result %+v", i, capped[i], all[i])
		}
	}
}

// TestDecodeVerifyCallback: the Verify hook rejects before MaxKeys
// truncation, mirroring revsketch.InferenceOptions semantics.
func TestDecodeVerifyCallback(t *testing.T) {
	s := newTestSketch(t, testParams(), 0xbead)
	s.Update(0x111111, 500)
	s.Update(0x222222, 400)
	got, err := s.DecodeCounts(100, DecodeOptions{
		Verify: func(key uint64, _ float64) bool { return key != 0x111111 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != 0x222222 {
		t.Fatalf("verify filter: got %+v, want only key 0x222222", got)
	}
}

// TestWeightedUpdateEquivalence: Update(k, v·c) ≡ c repeated
// Update(k, v), byte-for-byte — the linearity the recorder's O(1)
// NetFlow replay and the EWMA layer both rely on, now covering the
// folded key material too.
func TestWeightedUpdateEquivalence(t *testing.T) {
	p := testParams()
	rng := rand.New(rand.NewSource(44))
	counts := []int32{0, 1, 2, 3, 17, 100}
	values := []int32{-3, -1, 1, 2, 5}
	keyMask := uint64(1)<<uint(p.KeyBits) - 1
	weighted := newTestSketch(t, p, 0x5eed)
	repeated := newTestSketch(t, p, 0x5eed)
	for i := 0; i < 200; i++ {
		k := rng.Uint64() & keyMask
		v := values[rng.Intn(len(values))]
		c := counts[rng.Intn(len(counts))]
		weighted.Update(k, v*c)
		for j := int32(0); j < c; j++ {
			repeated.Update(k, v)
		}
	}
	wb, _ := weighted.MarshalBinary()
	rb, _ := repeated.MarshalBinary()
	if !bytes.Equal(wb, rb) {
		t.Fatal("weighted and repeated update state diverged")
	}
}

// TestPlanUpdateEquivalence: FillPlan+UpdateAt writes exactly the
// buckets and fields Update writes.
func TestPlanUpdateEquivalence(t *testing.T) {
	p := testParams()
	direct := newTestSketch(t, p, 0x1234)
	planned := newTestSketch(t, p, 0x1234)
	plan := planned.NewPlan()
	keyMask := uint64(1)<<uint(p.KeyBits) - 1
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() & keyMask
		v := int32(rng.Intn(9) - 4)
		direct.Update(k, v)
		planned.FillPlan(k, sketch.PowersOf(k), plan)
		planned.UpdateAt(plan, v)
	}
	db, _ := direct.MarshalBinary()
	pb, _ := planned.MarshalBinary()
	if !bytes.Equal(db, pb) {
		t.Fatal("planned update state diverged from direct Update")
	}
}

// TestCombineLinearity: COMBINE of per-router shards equals the sketch
// of the union stream, and the combined sketch decodes keys that are
// only heavy in aggregate — the multi-router detection property.
func TestCombineLinearity(t *testing.T) {
	p := testParams()
	union := newTestSketch(t, p, 0x77)
	shards := make([]*Sketch, 3)
	for i := range shards {
		shards[i] = newTestSketch(t, p, 0x77)
	}
	keyMask := uint64(1)<<uint(p.KeyBits) - 1
	rng := rand.New(rand.NewSource(99))
	heavyKey := uint64(0xabcdef012345) & keyMask
	for i := 0; i < 900; i++ {
		k := rng.Uint64() & keyMask
		v := int32(1 + rng.Intn(4))
		union.Update(k, v)
		shards[i%3].Update(k, v)
	}
	// Spread one key so each shard holds a sub-threshold share.
	for i := range shards {
		union.Update(heavyKey, 200)
		shards[i].Update(heavyKey, 200)
	}
	combined, err := Combine([]int32{1, 1, 1}, shards)
	if err != nil {
		t.Fatal(err)
	}
	ub, _ := union.MarshalBinary()
	cb, _ := combined.MarshalBinary()
	if !bytes.Equal(ub, cb) {
		t.Fatal("COMBINE of shards diverged from union-stream sketch")
	}
	got, err := combined.DecodeCounts(400, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ke := range got {
		if ke.Key == heavyKey {
			return
		}
	}
	t.Fatalf("aggregate-heavy key %#x not decoded from combined sketch (got %v)", heavyKey, got)
}

// TestCombineRejectsIncompatible: differing seed or geometry fails.
func TestCombineRejectsIncompatible(t *testing.T) {
	a := newTestSketch(t, testParams(), 1)
	b := newTestSketch(t, testParams(), 2)
	if _, err := Combine([]int32{1, 1}, []*Sketch{a, b}); err == nil {
		t.Fatal("combine across seeds succeeded")
	}
	p2 := testParams()
	p2.Buckets <<= 1
	c := newTestSketch(t, p2, 1)
	if _, err := Combine([]int32{1, 1}, []*Sketch{a, c}); err == nil {
		t.Fatal("combine across geometries succeeded")
	}
}

// TestMarshalRoundTrip: serialize → deserialize → identical bytes and
// identical decode output.
func TestMarshalRoundTrip(t *testing.T) {
	s := newTestSketch(t, testParams(), 0xfeed)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		s.Update(rng.Uint64()&0xffffffffffff, int32(rng.Intn(7)-2))
	}
	s.Update(0x424242, 1000)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Sketch
	if err := loaded.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	data2, err := loaded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("marshal round trip not byte-identical")
	}
	if loaded.Total() != s.Total() {
		t.Fatalf("total %d != %d after round trip", loaded.Total(), s.Total())
	}
	got, err := loaded.DecodeCounts(500, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != 0x424242 {
		t.Fatalf("decode after round trip: %v", got)
	}
}

// TestUnmarshalRejectsGarbage covers the validation paths.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	var s Sketch
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if err := s.UnmarshalBinary(make([]byte, 40)); err == nil {
		t.Error("zero magic accepted")
	}
	good := newTestSketch(t, testParams(), 9)
	data, _ := good.MarshalBinary()
	if err := s.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Error("truncated body accepted")
	}
}

// TestResetAndOccupancy: occupancy rises with traffic and Reset clears
// counters but keeps hashing (same keys land in the same buckets).
func TestResetAndOccupancy(t *testing.T) {
	s := newTestSketch(t, testParams(), 0x11)
	if occ := s.Occupancy(); occ != 0 {
		t.Fatalf("fresh occupancy %v", occ)
	}
	b0 := s.BucketIndex(0, 12345)
	s.Update(12345, 10)
	if occ := s.Occupancy(); occ <= 0 {
		t.Fatalf("occupancy %v after update", occ)
	}
	s.Reset()
	if occ := s.Occupancy(); occ != 0 {
		t.Fatalf("occupancy %v after reset", occ)
	}
	if s.Total() != 0 {
		t.Fatalf("total %d after reset", s.Total())
	}
	if s.BucketIndex(0, 12345) != b0 {
		t.Fatal("hashing changed across Reset")
	}
	var nilS *Sketch
	if occ := nilS.Occupancy(); occ != 0 {
		t.Fatalf("nil occupancy %v", occ)
	}
}

// TestValidate covers the parameter guards.
func TestValidate(t *testing.T) {
	bad := []Params{
		{KeyBits: 0, Stages: 3, Buckets: 256},
		{KeyBits: 65, Stages: 3, Buckets: 256},
		{KeyBits: 48, Stages: 0, Buckets: 256},
		{KeyBits: 48, Stages: 16, Buckets: 256},
		{KeyBits: 48, Stages: 3, Buckets: 0},
		{KeyBits: 48, Stages: 3, Buckets: 100},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v validated", p)
		}
	}
	if err := Params48().Validate(); err != nil {
		t.Errorf("Params48: %v", err)
	}
	if err := Params64().Validate(); err != nil {
		t.Errorf("Params64: %v", err)
	}
}

// TestDecodeGridGeometryMismatch: wrong-shaped grids and non-positive
// thresholds are rejected.
func TestDecodeGridGeometryMismatch(t *testing.T) {
	s := newTestSketch(t, testParams(), 0x21)
	if _, err := s.Decode(sketch.NewGrid(2, 10), 1, DecodeOptions{}); err == nil {
		t.Error("mismatched grid accepted")
	}
	g := sketch.NewGrid(s.params.Stages, s.params.Buckets*s.params.Fields())
	if _, err := s.Decode(g, 0, DecodeOptions{}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := s.Decode(g, 1, DecodeOptions{}); err != nil {
		t.Errorf("valid decode rejected: %v", err)
	}
}

// Per-packet operations may not allocate (hotpath-alloc lint contract).

func TestUpdateAllocs(t *testing.T) {
	s := newTestSketch(t, testParams(), 42)
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		s.Update(key, 1)
		key++
	})
	if allocs != 0 {
		t.Errorf("Update allocates %v times per call, want 0", allocs)
	}
}

func TestFillPlanUpdateAtAllocs(t *testing.T) {
	s := newTestSketch(t, testParams(), 42)
	plan := s.NewPlan()
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		s.FillPlan(key, sketch.PowersOf(key), plan)
		s.UpdateAt(plan, 1)
		key++
	})
	if allocs != 0 {
		t.Errorf("FillPlan+UpdateAt allocates %v times per call, want 0", allocs)
	}
}

func TestEstimateAllocs(t *testing.T) {
	s := newTestSketch(t, testParams(), 42)
	for k := uint64(0); k < 100; k++ {
		s.Update(k, int32(k%5)+1)
	}
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		_ = s.Estimate(key)
		key++
	})
	if allocs != 0 {
		t.Errorf("Estimate allocates %v times per call, want 0", allocs)
	}
}
