package invsketch

// Shard-view API for the key-sharded parallel pipeline. Invertible
// buckets are not independent cells — one update writes a contiguous
// Fields-sized burst carrying folded key material — so the pipeline
// routes whole buckets: an op names (stage, bucket) and carries the
// key, fingerprint and weight, and the owning worker replays the same
// burst Update would have written. ApplyAt is that replay, minus the
// total bookkeeping (stitched separately via AddTotal at rotation).

// ApplyAt folds one weighted update into a specific stage's bucket —
// exactly Update's per-stage write burst with the hashing already done
// elsewhere. It does NOT touch the sketch total; pair it with AddTotal
// when stitching an epoch. fp must be the key's Fingerprint (the
// sharded planner caches it via FillPlan).
//
//hifind:hot
func (s *Sketch) ApplyAt(stage int, bucket uint32, key uint64, fp, v int32) {
	s.apply(stage, bucket, key, fp, v)
}

// AddTotal folds an externally tallied sum of update values into the
// sketch's total — the epoch-rotation stitch for ApplyAt appliers.
func (s *Sketch) AddTotal(d int64) { s.total += d }

// Indices returns the plan's cached per-stage bucket indices, shared
// with the plan. Read-only for callers; FillPlan overwrites it.
func (p *Plan) Indices() []uint32 { return p.idx }

// Key returns the planned key, for appliers that replay the bit fold.
func (p *Plan) Key() uint64 { return p.key }

// Fp returns the planned key's cached fingerprint.
func (p *Plan) Fp() int32 { return p.fp }
