package netflow

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
)

func testEdge(t *testing.T) *netmodel.EdgeNetwork {
	t.Helper()
	e, err := netmodel.NewEdgeNetwork("129.105.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sampleRecords() []Record {
	return []Record{
		{
			SrcAddr: netmodel.MustParseIPv4("8.8.8.8"), DstAddr: netmodel.MustParseIPv4("129.105.1.1"),
			SrcPort: 40000, DstPort: 80, Packets: 5, Octets: 2000,
			FirstMs: 1000, LastMs: 2500,
			TCPFlags: uint8(netmodel.FlagSYN | netmodel.FlagACK | netmodel.FlagFIN), Protocol: protoTCP,
		},
		{
			SrcAddr: netmodel.MustParseIPv4("129.105.1.1"), DstAddr: netmodel.MustParseIPv4("8.8.8.8"),
			SrcPort: 80, DstPort: 40000, Packets: 4, Octets: 1800,
			FirstMs: 1100, LastMs: 2400,
			TCPFlags: uint8(netmodel.FlagSYN | netmodel.FlagACK), Protocol: protoTCP,
		},
		{
			SrcAddr: netmodel.MustParseIPv4("203.0.113.1"), DstAddr: netmodel.MustParseIPv4("129.105.2.2"),
			SrcPort: 55555, DstPort: 1433, Packets: 1, Octets: 40,
			FirstMs: 3000, LastMs: 3000,
			TCPFlags: uint8(netmodel.FlagSYN), Protocol: protoTCP,
		},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	hdr := Header{SysUptimeMs: 60000, UnixSecs: 1115700000, UnixNsecs: 12345, FlowSequence: 99}
	recs := sampleRecords()
	data, err := Marshal(hdr, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != HeaderLen+RecordLen*len(recs) {
		t.Fatalf("packet length %d", len(data))
	}
	gotHdr, gotRecs, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.SysUptimeMs != hdr.SysUptimeMs || gotHdr.UnixSecs != hdr.UnixSecs ||
		gotHdr.FlowSequence != hdr.FlowSequence {
		t.Errorf("header mismatch: %+v", gotHdr)
	}
	if int(gotHdr.Count) != len(recs) {
		t.Errorf("count %d", gotHdr.Count)
	}
	for i := range recs {
		if gotRecs[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, gotRecs[i], recs[i])
		}
	}
}

func TestMarshalValidation(t *testing.T) {
	if _, err := Marshal(Header{}, nil); err == nil {
		t.Error("empty packet accepted")
	}
	if _, err := Marshal(Header{}, make([]Record, 31)); err == nil {
		t.Error("31 records accepted")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	data, err := Marshal(Header{}, sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Unmarshal(data[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := Unmarshal(data[:HeaderLen+5]); err == nil {
		t.Error("truncated records accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0], bad[1] = 0, 9 // version 9
	if _, _, err := Unmarshal(bad); err == nil {
		t.Error("wrong version accepted")
	}
	bad = append([]byte(nil), data...)
	bad[2], bad[3] = 0xff, 0xff // absurd count
	if _, _, err := Unmarshal(bad); err == nil {
		t.Error("absurd count accepted")
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	boot := time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC)
	w := NewWriter(&buf, boot)
	// 65 records exercise packet boundaries (30+30+5).
	want := make([]Record, 65)
	for i := range want {
		want[i] = Record{
			SrcAddr: netmodel.IPv4(0x08000000 + uint32(i)), DstAddr: netmodel.MustParseIPv4("129.105.1.1"),
			SrcPort: uint16(1000 + i), DstPort: 80, Packets: 1, Octets: 40,
			TCPFlags: uint8(netmodel.FlagSYN), Protocol: protoTCP,
		}
		if err := w.Add(want[i], boot.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := range want {
		got, hdr, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
		if hdr.Count == 0 {
			t.Fatal("header not populated")
		}
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}))
	if _, _, err := r.Next(); err == nil {
		t.Error("implausible frame length accepted")
	}
	r = NewReader(bytes.NewReader([]byte{0, 0, 0, 100, 1, 2, 3}))
	if _, _, err := r.Next(); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestToFlowRecordDirectionAndCounts(t *testing.T) {
	edge := testEdge(t)
	hdr := Header{SysUptimeMs: 10000, UnixSecs: 1115700010}
	recs := sampleRecords()

	// Inbound client flow with SYN (and ACKs later in the flow): the OR'd
	// flags include SYN+ACK, but direction says client side ⇒ one SYN.
	fr, ok := ToFlowRecord(recs[0], hdr, edge)
	if !ok {
		t.Fatal("client flow rejected")
	}
	if fr.Dir != netmodel.Inbound || fr.SYNs != 1 || fr.SYNACKs != 0 {
		t.Errorf("client flow: %+v", fr)
	}
	if fr.FINs != 1 {
		t.Error("FIN lost")
	}

	// Outbound server flow with SYN+ACK ⇒ one SYN/ACK.
	fr, ok = ToFlowRecord(recs[1], hdr, edge)
	if !ok {
		t.Fatal("server flow rejected")
	}
	if fr.Dir != netmodel.Outbound || fr.SYNACKs != 1 || fr.SYNs != 0 {
		t.Errorf("server flow: %+v", fr)
	}

	// Scan probe: single inbound SYN.
	fr, ok = ToFlowRecord(recs[2], hdr, edge)
	if !ok || fr.SYNs != 1 {
		t.Errorf("probe flow: ok=%v %+v", ok, fr)
	}
}

func TestToFlowRecordFilters(t *testing.T) {
	edge := testEdge(t)
	hdr := Header{}
	udp := sampleRecords()[0]
	udp.Protocol = 17
	if _, ok := ToFlowRecord(udp, hdr, edge); ok {
		t.Error("UDP accepted")
	}
	noHandshake := sampleRecords()[0]
	noHandshake.TCPFlags = uint8(netmodel.FlagACK)
	if _, ok := ToFlowRecord(noHandshake, hdr, edge); ok {
		t.Error("pure-ACK flow accepted")
	}
	transit := sampleRecords()[0]
	transit.DstAddr = netmodel.MustParseIPv4("9.9.9.9")
	if _, ok := ToFlowRecord(transit, hdr, edge); ok {
		t.Error("transit flow accepted")
	}
}

func TestToFlowRecordTimes(t *testing.T) {
	edge := testEdge(t)
	export := time.Date(2005, 5, 10, 12, 0, 0, 0, time.UTC)
	hdr := Header{SysUptimeMs: 100000, UnixSecs: uint32(export.Unix())}
	rec := sampleRecords()[2]
	rec.FirstMs, rec.LastMs = 40000, 70000
	fr, ok := ToFlowRecord(rec, hdr, edge)
	if !ok {
		t.Fatal("rejected")
	}
	boot := export.Add(-100 * time.Second)
	if !fr.Start.Equal(boot.Add(40 * time.Second)) {
		t.Errorf("start = %v", fr.Start)
	}
	if !fr.End.Equal(boot.Add(70 * time.Second)) {
		t.Errorf("end = %v", fr.End)
	}
}

func TestFromPacketsAggregates(t *testing.T) {
	boot := time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC)
	src := netmodel.MustParseIPv4("8.8.8.8")
	dst := netmodel.MustParseIPv4("129.105.1.1")
	pkts := []netmodel.Packet{
		{Timestamp: boot.Add(time.Second), SrcIP: src, DstIP: dst, SrcPort: 1000, DstPort: 80,
			Flags: netmodel.FlagSYN, Wire: 40},
		{Timestamp: boot.Add(2 * time.Second), SrcIP: src, DstIP: dst, SrcPort: 1000, DstPort: 80,
			Flags: netmodel.FlagACK, Wire: 60},
		{Timestamp: boot.Add(3 * time.Second), SrcIP: src, DstIP: dst, SrcPort: 1001, DstPort: 80,
			Flags: netmodel.FlagSYN, Wire: 40},
	}
	recs := FromPackets(pkts, boot)
	if len(recs) != 2 {
		t.Fatalf("aggregated into %d flows, want 2", len(recs))
	}
	first := recs[0]
	if first.Packets != 2 || first.Octets != 100 {
		t.Errorf("flow aggregation wrong: %+v", first)
	}
	if first.TCPFlags != uint8(netmodel.FlagSYN|netmodel.FlagACK) {
		t.Errorf("flags not OR'd: %#x", first.TCPFlags)
	}
	if first.FirstMs != 1000 || first.LastMs != 2000 {
		t.Errorf("times wrong: %+v", first)
	}
}

// TestEndToEndWithRecorder checks the NetFlow path feeds HiFIND's recorder
// equivalently to the packet path for handshake accounting.
func TestEndToEndWithRecorder(t *testing.T) {
	boot := time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC)
	edge := testEdge(t)
	var buf bytes.Buffer
	w := NewWriter(&buf, boot)
	// A small flood: 40 client SYN flows, 2 answered.
	for i := 0; i < 40; i++ {
		rec := Record{
			SrcAddr: netmodel.IPv4(0x08000000 + uint32(i)), DstAddr: netmodel.MustParseIPv4("129.105.9.9"),
			SrcPort: uint16(2000 + i), DstPort: 25, Packets: 1, Octets: 40,
			TCPFlags: uint8(netmodel.FlagSYN), Protocol: protoTCP,
		}
		if err := w.Add(rec, boot.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		rec := Record{
			SrcAddr: netmodel.MustParseIPv4("129.105.9.9"), DstAddr: netmodel.IPv4(0x08000000 + uint32(i)),
			SrcPort: 25, DstPort: uint16(2000 + i), Packets: 1, Octets: 40,
			TCPFlags: uint8(netmodel.FlagSYN | netmodel.FlagACK), Protocol: protoTCP,
		}
		if err := w.Add(rec, boot.Add(time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	syns, synacks := 0, 0
	for {
		rec, hdr, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		fr, ok := ToFlowRecord(rec, hdr, edge)
		if !ok {
			continue
		}
		syns += fr.SYNs
		synacks += fr.SYNACKs
	}
	if syns != 40 || synacks != 2 {
		t.Errorf("replayed SYNs=%d SYN/ACKs=%d, want 40/2", syns, synacks)
	}
}

func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = Unmarshal(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMarshalUnmarshalProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, pk, oc uint32, flags uint8, seq uint32) bool {
		rec := Record{
			SrcAddr: netmodel.IPv4(src), DstAddr: netmodel.IPv4(dst),
			SrcPort: sp, DstPort: dp, Packets: pk, Octets: oc,
			TCPFlags: flags, Protocol: protoTCP,
		}
		data, err := Marshal(Header{FlowSequence: seq}, []Record{rec})
		if err != nil {
			return false
		}
		hdr, recs, err := Unmarshal(data)
		if err != nil || len(recs) != 1 {
			return false
		}
		return recs[0] == rec && hdr.FlowSequence == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
