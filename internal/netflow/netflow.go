// Package netflow implements the NetFlow version 5 export format, the
// form in which both of the paper's evaluation traces arrive ("the router
// exports netflow data continuously which is recorded with sketches of
// HiFIND on the fly", §5.1). The package encodes and decodes standard v5
// export packets — a 24-byte header followed by up to 30 fixed 48-byte
// flow records — and converts records to the internal flow model,
// recovering direction from an edge-network description.
package netflow

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
)

const (
	// Version is the only NetFlow version this package speaks.
	Version = 5
	// HeaderLen and RecordLen are the fixed v5 wire sizes.
	HeaderLen = 24
	RecordLen = 48
	// MaxRecordsPerPacket is the v5 limit.
	MaxRecordsPerPacket = 30

	protoTCP = 6
)

// Header is the v5 export-packet header.
type Header struct {
	Count        uint16 // records in this packet
	SysUptimeMs  uint32
	UnixSecs     uint32
	UnixNsecs    uint32
	FlowSequence uint32
	EngineType   uint8
	EngineID     uint8
	SamplingInfo uint16
}

// Record is one v5 flow record (TCP fields only; HiFIND ignores the
// routing fields, which encode as zero).
type Record struct {
	SrcAddr  netmodel.IPv4
	DstAddr  netmodel.IPv4
	Packets  uint32
	Octets   uint32
	FirstMs  uint32 // sysuptime at flow start
	LastMs   uint32 // sysuptime at flow end
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8 // OR of all packet flags seen in the flow
	Protocol uint8
	Tos      uint8
}

// Marshal encodes an export packet. len(records) must be 1..30.
func Marshal(hdr Header, records []Record) ([]byte, error) {
	if len(records) == 0 || len(records) > MaxRecordsPerPacket {
		return nil, fmt.Errorf("netflow: %d records per packet (want 1..%d)",
			len(records), MaxRecordsPerPacket)
	}
	buf := make([]byte, HeaderLen+RecordLen*len(records))
	be := binary.BigEndian
	be.PutUint16(buf[0:], Version)
	be.PutUint16(buf[2:], uint16(len(records)))
	be.PutUint32(buf[4:], hdr.SysUptimeMs)
	be.PutUint32(buf[8:], hdr.UnixSecs)
	be.PutUint32(buf[12:], hdr.UnixNsecs)
	be.PutUint32(buf[16:], hdr.FlowSequence)
	buf[20] = hdr.EngineType
	buf[21] = hdr.EngineID
	be.PutUint16(buf[22:], hdr.SamplingInfo)
	for i, r := range records {
		off := HeaderLen + i*RecordLen
		be.PutUint32(buf[off+0:], uint32(r.SrcAddr))
		be.PutUint32(buf[off+4:], uint32(r.DstAddr))
		// next-hop (8..12) stays zero
		// input/output SNMP ifindexes (12..16) stay zero
		be.PutUint32(buf[off+16:], r.Packets)
		be.PutUint32(buf[off+20:], r.Octets)
		be.PutUint32(buf[off+24:], r.FirstMs)
		be.PutUint32(buf[off+28:], r.LastMs)
		be.PutUint16(buf[off+32:], r.SrcPort)
		be.PutUint16(buf[off+34:], r.DstPort)
		// pad (36)
		buf[off+37] = r.TCPFlags
		buf[off+38] = r.Protocol
		buf[off+39] = r.Tos
		// AS numbers, masks, pad (40..48) stay zero
	}
	return buf, nil
}

// Unmarshal decodes one export packet.
func Unmarshal(data []byte) (Header, []Record, error) {
	if len(data) < HeaderLen {
		return Header{}, nil, fmt.Errorf("netflow: packet of %d bytes shorter than header", len(data))
	}
	be := binary.BigEndian
	if v := be.Uint16(data[0:]); v != Version {
		return Header{}, nil, fmt.Errorf("netflow: version %d, want %d", v, Version)
	}
	hdr := Header{
		Count:        be.Uint16(data[2:]),
		SysUptimeMs:  be.Uint32(data[4:]),
		UnixSecs:     be.Uint32(data[8:]),
		UnixNsecs:    be.Uint32(data[12:]),
		FlowSequence: be.Uint32(data[16:]),
		EngineType:   data[20],
		EngineID:     data[21],
		SamplingInfo: be.Uint16(data[22:]),
	}
	if int(hdr.Count) > MaxRecordsPerPacket {
		return Header{}, nil, fmt.Errorf("netflow: header claims %d records", hdr.Count)
	}
	want := HeaderLen + RecordLen*int(hdr.Count)
	if len(data) < want {
		return Header{}, nil, fmt.Errorf("netflow: %d bytes for %d records (want %d)",
			len(data), hdr.Count, want)
	}
	records := make([]Record, hdr.Count)
	for i := range records {
		off := HeaderLen + i*RecordLen
		records[i] = Record{
			SrcAddr:  netmodel.IPv4(be.Uint32(data[off+0:])),
			DstAddr:  netmodel.IPv4(be.Uint32(data[off+4:])),
			Packets:  be.Uint32(data[off+16:]),
			Octets:   be.Uint32(data[off+20:]),
			FirstMs:  be.Uint32(data[off+24:]),
			LastMs:   be.Uint32(data[off+28:]),
			SrcPort:  be.Uint16(data[off+32:]),
			DstPort:  be.Uint16(data[off+34:]),
			TCPFlags: data[off+37],
			Protocol: data[off+38],
			Tos:      data[off+39],
		}
	}
	return hdr, records, nil
}

// Writer streams flow records as length-delimited v5 export packets to an
// io.Writer (the length prefix substitutes for UDP datagram framing when
// exports are written to a file). Records buffer until a packet fills;
// Flush emits a partial packet.
type Writer struct {
	w        io.Writer
	boot     time.Time
	pending  []Record
	sequence uint32
	lastTime time.Time
}

// NewWriter builds a writer; boot anchors the sysuptime clock.
func NewWriter(w io.Writer, boot time.Time) *Writer {
	return &Writer{w: w, boot: boot, pending: make([]Record, 0, MaxRecordsPerPacket)}
}

// Add buffers one flow; ts is the flow's end time (export time).
func (nw *Writer) Add(rec Record, ts time.Time) error {
	nw.pending = append(nw.pending, rec)
	nw.lastTime = ts
	if len(nw.pending) == MaxRecordsPerPacket {
		return nw.Flush()
	}
	return nil
}

// Flush writes buffered records as one export packet.
func (nw *Writer) Flush() error {
	if len(nw.pending) == 0 {
		return nil
	}
	hdr := Header{
		SysUptimeMs:  uint32(nw.lastTime.Sub(nw.boot).Milliseconds()),
		UnixSecs:     uint32(nw.lastTime.Unix()),
		UnixNsecs:    uint32(nw.lastTime.Nanosecond()),
		FlowSequence: nw.sequence,
	}
	pkt, err := Marshal(hdr, nw.pending)
	if err != nil {
		return err
	}
	var lenPrefix [4]byte
	binary.BigEndian.PutUint32(lenPrefix[:], uint32(len(pkt)))
	if _, err := nw.w.Write(lenPrefix[:]); err != nil {
		return fmt.Errorf("netflow: write frame: %w", err)
	}
	if _, err := nw.w.Write(pkt); err != nil {
		return fmt.Errorf("netflow: write frame: %w", err)
	}
	nw.sequence += uint32(len(nw.pending))
	nw.pending = nw.pending[:0]
	return nil
}

// Reader streams flow records back from a length-delimited export file.
type Reader struct {
	r       io.Reader
	queue   []Record
	hdr     Header
	nextIdx int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record and the export header it arrived under, or
// io.EOF at end of stream.
func (nr *Reader) Next() (Record, Header, error) {
	for nr.nextIdx >= len(nr.queue) {
		var lenPrefix [4]byte
		if _, err := io.ReadFull(nr.r, lenPrefix[:]); err != nil {
			if err == io.EOF {
				return Record{}, Header{}, io.EOF
			}
			return Record{}, Header{}, fmt.Errorf("netflow: frame length: %w", err)
		}
		n := binary.BigEndian.Uint32(lenPrefix[:])
		if n < HeaderLen || n > HeaderLen+RecordLen*MaxRecordsPerPacket {
			return Record{}, Header{}, fmt.Errorf("netflow: implausible frame of %d bytes", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(nr.r, buf); err != nil {
			return Record{}, Header{}, fmt.Errorf("netflow: frame body: %w", err)
		}
		hdr, records, err := Unmarshal(buf)
		if err != nil {
			return Record{}, Header{}, err
		}
		nr.hdr = hdr
		nr.queue = records
		nr.nextIdx = 0
	}
	rec := nr.queue[nr.nextIdx]
	nr.nextIdx++
	return rec, nr.hdr, nil
}

// ToFlowRecord converts a v5 record to the internal flow model, deriving
// direction from the edge network and SYN/SYN-ACK counts from the flow's
// OR'd TCP flags. NetFlow does not count handshake packets separately and
// ORs all flags together, so the conversion must decide which side
// originated the flow: a flow with SYN but no ACK is a connection attempt
// (scan probes and unanswered floods look exactly like this); when both
// SYN and ACK appear the flow could be a client's (its later ACKs OR in)
// or a server's (the SYN/ACK itself), and the standard port heuristic
// breaks the tie — the side with the numerically lower port is taken as
// the server. Flows that are not TCP, carry no handshake flags, or do not
// cross the edge return ok=false.
func ToFlowRecord(r Record, hdr Header, edge *netmodel.EdgeNetwork) (netmodel.FlowRecord, bool) {
	if r.Protocol != protoTCP {
		return netmodel.FlowRecord{}, false
	}
	dir, ok := edge.Classify(r.SrcAddr, r.DstAddr)
	if !ok {
		return netmodel.FlowRecord{}, false
	}
	flags := netmodel.TCPFlags(r.TCPFlags)
	out := netmodel.FlowRecord{
		SrcIP:   r.SrcAddr,
		DstIP:   r.DstAddr,
		SrcPort: r.SrcPort,
		DstPort: r.DstPort,
		Dir:     dir,
		Packets: int(r.Packets),
		Bytes:   int(r.Octets),
	}
	exportTime := time.Unix(int64(hdr.UnixSecs), int64(hdr.UnixNsecs)).UTC()
	uptime := time.Duration(hdr.SysUptimeMs) * time.Millisecond
	boot := exportTime.Add(-uptime)
	out.Start = boot.Add(time.Duration(r.FirstMs) * time.Millisecond)
	out.End = boot.Add(time.Duration(r.LastMs) * time.Millisecond)
	hasSYN := flags&netmodel.FlagSYN != 0
	hasACK := flags&netmodel.FlagACK != 0
	switch {
	case !hasSYN:
		return netmodel.FlowRecord{}, false
	case !hasACK || r.DstPort < r.SrcPort:
		// Pure SYN, or SYN+ACK with the remote port looking like the
		// service: a client-originated attempt.
		out.SYNs = 1
	default:
		// SYN+ACK originating at the lower (service) port: the server's
		// answer flow.
		out.SYNACKs = 1
	}
	if flags.IsFIN() {
		out.FINs = 1
	}
	if flags.IsRST() {
		out.RSTs = 1
	}
	return out, true
}

// FromPackets aggregates a packet stream into unidirectional v5 records
// keyed by the 5-tuple, for building export files from packet traces. It
// is an offline helper (tests, tracegen), not a line-rate flow cache.
func FromPackets(pkts []netmodel.Packet, boot time.Time) []Record {
	type key struct {
		src, dst netmodel.IPv4
		sp, dp   uint16
	}
	order := make([]key, 0, len(pkts))
	agg := make(map[key]*Record, len(pkts))
	for _, p := range pkts {
		k := key{src: p.SrcIP, dst: p.DstIP, sp: p.SrcPort, dp: p.DstPort}
		r := agg[k]
		if r == nil {
			r = &Record{
				SrcAddr: p.SrcIP, DstAddr: p.DstIP,
				SrcPort: p.SrcPort, DstPort: p.DstPort,
				Protocol: protoTCP,
				FirstMs:  uint32(p.Timestamp.Sub(boot).Milliseconds()),
			}
			agg[k] = r
			order = append(order, k)
		}
		r.Packets++
		r.Octets += uint32(maxInt(p.Wire, 40))
		r.TCPFlags |= uint8(p.Flags)
		r.LastMs = uint32(p.Timestamp.Sub(boot).Milliseconds())
	}
	out := make([]Record, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
