package netflow

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/telemetry"
)

// collectAll starts a collector whose handler appends into a synchronized
// slice, returning accessors.
func collectAll(t *testing.T) (*Collector, func() []Record) {
	t.Helper()
	var mu sync.Mutex
	var got []Record
	c, err := Listen("127.0.0.1:0", func(r Record, _ Header) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, func() []Record {
		mu.Lock()
		defer mu.Unlock()
		out := make([]Record, len(got))
		copy(out, got)
		return out
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestCollectorReceivesExportedRecords(t *testing.T) {
	c, got := collectAll(t)
	e, err := NewExporter(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetClock(60000, 1115700000)
	// 65 records: two full datagrams plus a flushed partial.
	want := make([]Record, 65)
	for i := range want {
		want[i] = Record{
			SrcAddr: netmodel.IPv4(0x08000000 + uint32(i)), DstAddr: netmodel.MustParseIPv4("129.105.1.1"),
			SrcPort: uint16(1000 + i), DstPort: 80, Packets: 1, Octets: 40,
			TCPFlags: uint8(netmodel.FlagSYN), Protocol: 6,
		}
		if err := e.Add(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 65 })
	recs := got()
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d mismatch: %+v != %+v", i, recs[i], want[i])
		}
	}
	pkts, nrecs, malformed := c.Stats()
	if pkts != 3 || nrecs != 65 || malformed != 0 {
		t.Errorf("Stats = %d/%d/%d, want 3/65/0", pkts, nrecs, malformed)
	}
}

func TestCollectorDropsMalformedDatagrams(t *testing.T) {
	c, got := collectAll(t)
	e, err := NewExporter(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Raw garbage straight at the socket.
	if _, err := e.conn.Write([]byte("not netflow at all")); err != nil {
		t.Fatal(err)
	}
	// Followed by a valid record, proving the loop survived.
	if err := e.Add(Record{SrcAddr: 1, DstAddr: 2, Protocol: 6}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 1 })
	_, _, malformed := c.Stats()
	if malformed != 1 {
		t.Errorf("malformed = %d, want 1", malformed)
	}
}

// TestCollectorMalformedDatagramTelemetry feeds every malformed shape
// Unmarshal rejects — truncated header, wrong version, impossible record
// count, header claiming more records than the payload carries — and
// checks that each one increments the parse-error counter while the
// receive loop keeps decoding valid traffic.
func TestCollectorMalformedDatagramTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var got []Record
	c, err := Listen("127.0.0.1:0", func(r Record, _ Header) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	}, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e, err := NewExporter(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	valid, err := Marshal(Header{UnixSecs: 1115700000}, []Record{
		{SrcAddr: 1, DstAddr: 2, DstPort: 80, Protocol: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		d := append([]byte(nil), valid...)
		mutate(d)
		return d
	}
	malformed := [][]byte{
		valid[:HeaderLen-1], // truncated: shorter than the fixed header
		corrupt(func(d []byte) { binary.BigEndian.PutUint16(d[0:], 9) }),  // version 9, want 5
		corrupt(func(d []byte) { binary.BigEndian.PutUint16(d[2:], 31) }), // count over the v5 limit
		corrupt(func(d []byte) { binary.BigEndian.PutUint16(d[2:], 2) }),  // claims 2 records, carries 1
	}
	for _, d := range malformed {
		if _, err := e.conn.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	// A valid datagram after the garbage proves the loop survived.
	if _, err := e.conn.Write(valid); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool {
		snap := reg.Snapshot()
		parseErrs, _ := snap["netflow_parse_errors_total"].(int64)
		records, _ := snap["netflow_records_total"].(int64)
		return parseErrs == int64(len(malformed)) && records == 1
	})
	snap := reg.Snapshot()
	if n, _ := snap["netflow_datagrams_total"].(int64); n != int64(len(malformed))+1 {
		t.Errorf("netflow_datagrams_total = %v, want %d", n, len(malformed)+1)
	}
	_, _, statMalformed := c.Stats()
	if statMalformed != int64(len(malformed)) {
		t.Errorf("Stats malformed = %d, want %d", statMalformed, len(malformed))
	}
	mu.Lock()
	decoded := len(got)
	mu.Unlock()
	if decoded != 1 {
		t.Errorf("decoded %d records after malformed burst, want 1", decoded)
	}
}

func TestCollectorCloseIsIdempotentAndUnblocks(t *testing.T) {
	c, _ := collectAll(t)
	done := make(chan error, 2)
	go func() { done <- c.Close() }()
	go func() { done <- c.Close() }()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("Close blocked")
		}
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := Listen("bogus::::address", func(Record, Header) {}); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := NewExporter("bogus::::address"); err == nil {
		t.Error("bad exporter address accepted")
	}
}

// TestLivePipeline wires exporter → collector → recorder, the deployment
// shape of the paper's on-site NU experiment.
func TestLivePipeline(t *testing.T) {
	edge, err := netmodel.NewEdgeNetwork("129.105.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	syns := 0
	c, err := Listen("127.0.0.1:0", func(r Record, hdr Header) {
		if fr, ok := ToFlowRecord(r, hdr, edge); ok {
			mu.Lock()
			syns += fr.SYNs
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	e, err := NewExporter(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 50; i++ {
		err := e.Add(Record{
			SrcAddr: netmodel.IPv4(0x08000000 + uint32(i)), DstAddr: netmodel.MustParseIPv4("129.105.9.9"),
			SrcPort: uint16(2000 + i), DstPort: 25, Packets: 1, Octets: 40,
			TCPFlags: uint8(netmodel.FlagSYN), Protocol: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return syns == 50
	})
}
