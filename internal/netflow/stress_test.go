package netflow

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
)

// TestCollectorConcurrentExporters hammers the UDP collector from several
// exporter goroutines while another goroutine polls Stats, so the -race
// build exercises the receive loop, the stats mutex, and the handler
// callback concurrently. UDP may drop datagrams under load, so the test
// asserts internal consistency — handler invocations equal decoded-record
// stats — rather than exact delivery counts.
func TestCollectorConcurrentExporters(t *testing.T) {
	const (
		exporters      = 6
		flowsPerExport = 120
	)
	var handled int64
	c, err := Listen("127.0.0.1:0", func(Record, Header) {
		atomic.AddInt64(&handled, 1)
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				packets, records, malformed := c.Stats()
				if records < 0 || packets < 0 || malformed != 0 {
					t.Errorf("implausible stats: packets=%d records=%d malformed=%d",
						packets, records, malformed)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for e := 0; e < exporters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			ex, err := NewExporter(c.Addr())
			if err != nil {
				t.Errorf("exporter %d: %v", e, err)
				return
			}
			defer ex.Close()
			ex.SetClock(1000, 1115726400)
			for i := 0; i < flowsPerExport; i++ {
				rec := Record{
					SrcAddr:  netmodel.IPv4(0xc0a80000 + uint32(e*1000+i)),
					DstAddr:  netmodel.IPv4(0x0a000001),
					Packets:  1,
					Octets:   60,
					FirstMs:  uint32(i),
					LastMs:   uint32(i + 1),
					SrcPort:  uint16(1024 + i),
					DstPort:  80,
					TCPFlags: 0x02,
					Protocol: 6,
				}
				if err := ex.Add(rec); err != nil {
					t.Errorf("exporter %d add: %v", e, err)
					return
				}
			}
			if err := ex.Flush(); err != nil {
				t.Errorf("exporter %d flush: %v", e, err)
			}
		}(e)
	}
	wg.Wait()

	// Drain: wait until the record count stops moving (UDP gives no
	// completion signal), then verify the collector's ledger agrees with
	// the handler's.
	var last int64 = -1
	for i := 0; i < 100; i++ {
		_, records, _ := c.Stats()
		if records == last {
			break
		}
		last = records
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	pollWG.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	packets, records, malformed := c.Stats()
	if malformed != 0 {
		t.Errorf("%d malformed datagrams from well-formed exporters", malformed)
	}
	if got := atomic.LoadInt64(&handled); got != records {
		t.Errorf("handler saw %d records, stats counted %d", got, records)
	}
	if records == 0 || packets == 0 {
		t.Error("no traffic observed; stress test is vacuous")
	}
	if records > int64(exporters*flowsPerExport) {
		t.Errorf("decoded %d records, more than the %d sent", records, exporters*flowsPerExport)
	}
}
