package netflow

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/hifind/hifind/internal/telemetry"
)

// Collector receives NetFlow v5 export datagrams over UDP — the transport
// real routers use — and hands every decoded record to a handler. This is
// the live-deployment face of the package: point the router's
// `ip flow-export destination` at the collector, feed the records into a
// hifind detector, and the paper's §5.1 on-site setup is reproduced.
//
// The handler runs on the collector's single receive goroutine, so it may
// safely touch non-thread-safe state (such as a Recorder) but must return
// promptly; slow handlers drop datagrams at the socket, exactly like a
// slow physical collector.
type Collector struct {
	conn      *net.UDPConn
	handler   func(Record, Header)
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	mu        sync.Mutex
	packets   int64
	records   int64
	malformed int64

	// Telemetry handles; all nil (no-op) without WithTelemetry.
	mDatagrams *telemetry.Counter
	mRecords   *telemetry.Counter
	mParseErrs *telemetry.Counter
	mLag       *telemetry.Gauge
}

// CollectorOption customizes Listen.
type CollectorOption func(*Collector)

// WithTelemetry registers the collector's netflow_* metric series on
// reg: datagrams received, records decoded, parse errors, and collector
// lag (local wall clock minus the exporter's header timestamp, in
// seconds — how far behind the router's export stream the collector
// runs).
func WithTelemetry(reg *telemetry.Registry) CollectorOption {
	return func(c *Collector) {
		c.mDatagrams = reg.Counter("netflow_datagrams_total",
			"NetFlow v5 export datagrams received")
		c.mRecords = reg.Counter("netflow_records_total",
			"flow records decoded from export datagrams")
		c.mParseErrs = reg.Counter("netflow_parse_errors_total",
			"datagrams dropped as malformed (truncated, bad version, short records)")
		c.mLag = reg.Gauge("netflow_collector_lag_seconds",
			"local receive time minus exporter header timestamp")
	}
}

// Listen binds a UDP socket (addr like "127.0.0.1:2055"; use port 0 for
// tests) and starts receiving. Options (such as WithTelemetry) apply
// before the first datagram is read.
func Listen(addr string, handler func(Record, Header), opts ...CollectorOption) (*Collector, error) {
	if handler == nil {
		return nil, fmt.Errorf("netflow: nil handler")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("netflow: listen %s: %w", addr, err)
	}
	c := &Collector{conn: conn, handler: handler, done: make(chan struct{})}
	for _, o := range opts {
		o(c)
	}
	c.wg.Add(1)
	go c.receiveLoop()
	return c, nil
}

// Addr returns the bound address for exporters to send to.
func (c *Collector) Addr() string { return c.conn.LocalAddr().String() }

func (c *Collector) receiveLoop() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.done:
				return // Close was called
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient receive error; keep collecting
		}
		hdr, records, err := Unmarshal(buf[:n])
		c.mu.Lock()
		c.packets++
		c.mDatagrams.Inc()
		if err != nil {
			c.malformed++
			c.mParseErrs.Inc()
			c.mu.Unlock()
			continue
		}
		c.records += int64(len(records))
		c.mRecords.Add(int64(len(records)))
		c.mu.Unlock()
		if c.mLag != nil && hdr.UnixSecs != 0 {
			c.mLag.Set(time.Since(time.Unix(int64(hdr.UnixSecs), 0)).Seconds())
		}
		for _, r := range records {
			c.handler(r, hdr)
		}
	}
}

// Stats reports datagrams received, records decoded, and malformed
// datagrams dropped.
func (c *Collector) Stats() (packets, records, malformed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.packets, c.records, c.malformed
}

// Close stops the receive loop and waits for it to exit.
func (c *Collector) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.conn.Close()
		c.wg.Wait()
	})
	return err
}

// Exporter sends flow records to a collector as v5 UDP datagrams, for
// tests and for replaying stored traces into a live pipeline.
type Exporter struct {
	conn     *net.UDPConn
	pending  []Record
	sequence uint32
	uptimeMs uint32
	unixSecs uint32
}

// NewExporter dials the collector.
func NewExporter(addr string) (*Exporter, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dial %s: %w", addr, err)
	}
	return &Exporter{conn: conn, pending: make([]Record, 0, MaxRecordsPerPacket)}, nil
}

// SetClock updates the header clock fields used for subsequent exports.
func (e *Exporter) SetClock(uptimeMs, unixSecs uint32) {
	e.uptimeMs, e.unixSecs = uptimeMs, unixSecs
}

// Add buffers a record, exporting a full datagram when 30 accumulate.
func (e *Exporter) Add(rec Record) error {
	e.pending = append(e.pending, rec)
	if len(e.pending) == MaxRecordsPerPacket {
		return e.Flush()
	}
	return nil
}

// Flush exports buffered records immediately.
func (e *Exporter) Flush() error {
	if len(e.pending) == 0 {
		return nil
	}
	pkt, err := Marshal(Header{
		SysUptimeMs:  e.uptimeMs,
		UnixSecs:     e.unixSecs,
		FlowSequence: e.sequence,
	}, e.pending)
	if err != nil {
		return err
	}
	if _, err := e.conn.Write(pkt); err != nil {
		return fmt.Errorf("netflow: export: %w", err)
	}
	e.sequence += uint32(len(e.pending))
	e.pending = e.pending[:0]
	return nil
}

// Close flushes and closes the socket.
func (e *Exporter) Close() error {
	flushErr := e.Flush()
	closeErr := e.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
