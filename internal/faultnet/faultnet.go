// Package faultnet wraps net.Conn and net.Listener with deterministic,
// seeded fault injection for tests: scheduled connection resets, partial
// (truncated) and chunked writes, byte corruption at chosen offsets,
// duplicated writes, fixed per-write latency, and dial failures. Every
// fault is driven either by an explicit schedule or by a Plan derived
// deterministically from a seed, so a failing test reproduces from its
// seed alone — no timing dependence, no real packet loss.
//
// Faults are injected on the write side only: the writer and the reader
// of one connection see the same corrupted byte stream, which is exactly
// what a fault on the wire produces.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Plan schedules the faults of one connection. The zero value injects
// nothing. Offsets and write indices count from the start of the
// connection: offset = bytes accepted so far, write index = Write calls
// so far (0-based).
type Plan struct {
	// FailConnect makes the dialer (or listener, for accepted conns)
	// close the connection immediately, before any byte moves.
	FailConnect bool
	// ResetAfterBytes kills the connection once that many bytes have been
	// written through: the Write that crosses the boundary delivers only
	// the bytes below it (a partial write on the wire), returns an error,
	// and every later Write fails. Zero disables.
	ResetAfterBytes int64
	// CorruptAt XORs the byte at each listed absolute write offset with
	// the corresponding mask (mask 0 means 0xFF, so a listed offset is
	// never a silent no-op).
	CorruptAt map[int64]byte
	// ChunkWrites splits every Write into pieces of at most this many
	// bytes, exercising short-read reassembly downstream. Zero disables.
	ChunkWrites int
	// DuplicateWrites re-sends the full data of the listed write indices
	// a second time, back to back — a duplicated frame if the protocol
	// writes frames atomically.
	DuplicateWrites map[int]bool
	// WriteDelay sleeps this long before every Write. Use only to widen
	// real race windows in stress tests; deterministic tests keep it 0.
	WriteDelay time.Duration
}

// RandomPlan derives a reproducible plan from a seed: with the given
// per-byte corruption rate, a reset roughly every resetEveryBytes
// written (0 disables resets), chunked writes, and an occasional
// duplicated write. Two calls with one seed yield identical plans.
func RandomPlan(seed int64, corruptRate float64, resetEveryBytes int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{
		ChunkWrites:     512 + rng.Intn(4096),
		CorruptAt:       make(map[int64]byte),
		DuplicateWrites: map[int]bool{3 + rng.Intn(64): true},
	}
	if corruptRate > 0 {
		// Scatter corruption over the first 32 MB with the requested
		// density; connections shorter than a gap see no corruption.
		const span = 32 << 20
		for off := int64(rng.ExpFloat64() / corruptRate); off < span; off += 1 + int64(rng.ExpFloat64()/corruptRate) {
			p.CorruptAt[off] = byte(rng.Intn(256))
		}
	}
	if resetEveryBytes > 0 {
		p.ResetAfterBytes = resetEveryBytes/2 + rng.Int63n(resetEveryBytes)
	}
	return p
}

// Conn wraps a net.Conn with one Plan. Reads pass through untouched.
type Conn struct {
	net.Conn
	plan *Plan

	mu      sync.Mutex
	written int64
	writes  int
	dead    bool
}

// WrapConn applies plan to c. A nil plan injects nothing.
func WrapConn(c net.Conn, plan *Plan) *Conn {
	if plan == nil {
		plan = &Plan{}
	}
	return &Conn{Conn: c, plan: plan}
}

// Written returns how many bytes the wrapper has accepted so far.
func (c *Conn) Written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Write applies the plan: corruption, chunking, duplication, delay, and
// the scheduled reset. On reset it delivers the prefix below the
// boundary, closes the underlying connection, and fails this and every
// later Write.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan.WriteDelay > 0 {
		time.Sleep(c.plan.WriteDelay)
	}
	if c.dead {
		return 0, fmt.Errorf("faultnet: connection reset by plan")
	}
	idx := c.writes
	c.writes++

	data := b
	// Corrupt scheduled offsets within this write's span, copying the
	// caller's buffer once on first hit.
	if len(c.plan.CorruptAt) > 0 {
		copied := false
		for i := range b {
			if mask, ok := c.plan.CorruptAt[c.written+int64(i)]; ok {
				if !copied {
					data = append([]byte(nil), b...)
					copied = true
				}
				if mask == 0 {
					mask = 0xFF
				}
				data[i] ^= mask
			}
		}
	}

	// Scheduled reset: deliver the prefix, then die.
	if r := c.plan.ResetAfterBytes; r > 0 && c.written+int64(len(data)) > r {
		keep := r - c.written
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			n, err := c.writeChunked(data[:keep])
			c.written += int64(n)
			if err != nil {
				c.dead = true
				return n, err
			}
		}
		c.dead = true
		// Injected fault: the peer sees a reset either way, so the
		// Close error is deliberately dropped.
		c.Conn.Close()
		return int(keep), fmt.Errorf("faultnet: connection reset by plan after %d bytes", c.written)
	}

	n, err := c.writeChunked(data)
	c.written += int64(n)
	if err != nil {
		return n, err
	}
	if c.plan.DuplicateWrites[idx] {
		if _, err := c.writeChunked(data); err != nil {
			return n, err
		}
	}
	return n, err
}

// writeChunked forwards data to the underlying conn in ChunkWrites-sized
// pieces (or whole, when chunking is off).
func (c *Conn) writeChunked(data []byte) (int, error) {
	step := c.plan.ChunkWrites
	if step <= 0 || step >= len(data) {
		return c.Conn.Write(data)
	}
	total := 0
	for len(data) > 0 {
		k := step
		if k > len(data) {
			k = len(data)
		}
		n, err := c.Conn.Write(data[:k])
		total += n
		if err != nil {
			return total, err
		}
		data = data[k:]
	}
	return total, nil
}

// Planner hands out the plan for the i-th connection (0-based accept or
// dial order). Returning nil injects nothing for that connection.
type Planner func(i int) *Plan

// Listener wraps a net.Listener, applying the planner to each accepted
// connection in accept order.
type Listener struct {
	net.Listener
	planner Planner

	mu sync.Mutex
	n  int
}

// WrapListener applies planner to every accepted connection.
func WrapListener(ln net.Listener, planner Planner) *Listener {
	return &Listener{Listener: ln, planner: planner}
}

// Accept accepts the next connection and wraps it with its plan. A plan
// with FailConnect closes the connection immediately and accepts the
// next one, so the dialer observes connect-then-reset.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		i := l.n
		l.n++
		l.mu.Unlock()
		var plan *Plan
		if l.planner != nil {
			plan = l.planner(i)
		}
		if plan != nil && plan.FailConnect {
			// Injected fault: rejecting the connection is the point.
			conn.Close()
			continue
		}
		return WrapConn(conn, plan), nil
	}
}

// Dialer produces faulty client connections: the planner keys on the
// dial attempt index, and a FailConnect plan fails the dial itself.
type Dialer struct {
	// Dial is the underlying dial function (defaults to net.Dial "tcp").
	Dial func(addr string) (net.Conn, error)

	planner Planner
	mu      sync.Mutex
	n       int
}

// NewDialer builds a Dialer over planner.
func NewDialer(planner Planner) *Dialer {
	return &Dialer{planner: planner}
}

// Attempts returns how many dials have been made.
func (d *Dialer) Attempts() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

// DialContextFree dials addr, applying the plan for this attempt.
func (d *Dialer) DialContextFree(addr string) (net.Conn, error) {
	d.mu.Lock()
	i := d.n
	d.n++
	d.mu.Unlock()
	var plan *Plan
	if d.planner != nil {
		plan = d.planner(i)
	}
	if plan != nil && plan.FailConnect {
		return nil, fmt.Errorf("faultnet: dial attempt %d refused by plan", i)
	}
	dial := d.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, err
	}
	return WrapConn(conn, plan), nil
}
