package faultnet

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fakeConn is an in-memory net.Conn half that records every Write call
// separately, so tests can assert both the delivered byte stream and the
// chunk boundaries the wrapper produced.
type fakeConn struct {
	writes [][]byte
	closed bool
}

func (c *fakeConn) Write(b []byte) (int, error) {
	c.writes = append(c.writes, append([]byte(nil), b...))
	return len(b), nil
}

func (c *fakeConn) Read(b []byte) (int, error)         { return 0, nil }
func (c *fakeConn) Close() error                       { c.closed = true; return nil }
func (c *fakeConn) LocalAddr() net.Addr                { return nil }
func (c *fakeConn) RemoteAddr() net.Addr               { return nil }
func (c *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

func (c *fakeConn) bytes() []byte {
	var all []byte
	for _, w := range c.writes {
		all = append(all, w...)
	}
	return all
}

func TestRandomPlanDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, -7} {
		a := RandomPlan(seed, 1e-4, 1<<20)
		b := RandomPlan(seed, 1e-4, 1<<20)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two derivations differ:\n%+v\n%+v", seed, a, b)
		}
		if len(a.CorruptAt) == 0 {
			t.Fatalf("seed %d: corruptRate 1e-4 over 32 MB produced no corruption offsets", seed)
		}
		if a.ResetAfterBytes < 1<<19 || a.ResetAfterBytes >= 3<<19 {
			t.Fatalf("seed %d: ResetAfterBytes %d outside [every/2, 3·every/2)", seed, a.ResetAfterBytes)
		}
		if a.ChunkWrites < 512 || a.ChunkWrites >= 512+4096 {
			t.Fatalf("seed %d: ChunkWrites %d outside [512, 4608)", seed, a.ChunkWrites)
		}
		if len(a.DuplicateWrites) != 1 {
			t.Fatalf("seed %d: want exactly one duplicated write index, got %v", seed, a.DuplicateWrites)
		}
	}
}

func TestRandomPlanSeedsDiffer(t *testing.T) {
	a := RandomPlan(1, 1e-4, 1<<20)
	b := RandomPlan(2, 1e-4, 1<<20)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 derived identical plans")
	}
}

func TestRandomPlanDisabledFaults(t *testing.T) {
	p := RandomPlan(7, 0, 0)
	if len(p.CorruptAt) != 0 {
		t.Fatalf("corruptRate 0 still scheduled corruption: %v", p.CorruptAt)
	}
	if p.ResetAfterBytes != 0 {
		t.Fatalf("resetEveryBytes 0 still scheduled a reset at %d", p.ResetAfterBytes)
	}
}

func TestNilPlanPassesThrough(t *testing.T) {
	fake := &fakeConn{}
	c := WrapConn(fake, nil)
	msg := []byte("hello, wire")
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(msg))
	}
	if !bytes.Equal(fake.bytes(), msg) {
		t.Fatalf("delivered %q, want %q", fake.bytes(), msg)
	}
	if c.Written() != int64(len(msg)) {
		t.Fatalf("Written() = %d, want %d", c.Written(), len(msg))
	}
}

func TestCorruptAtAbsoluteOffsets(t *testing.T) {
	// Offsets count from the start of the connection, across Write calls:
	// offset 1 lands in the first write, offset 5 in the second. Mask 0
	// must mean 0xFF so a scheduled offset is never a silent no-op.
	fake := &fakeConn{}
	c := WrapConn(fake, &Plan{CorruptAt: map[int64]byte{1: 0x0F, 5: 0}})
	first := []byte{0x10, 0x20, 0x30}
	second := []byte{0x40, 0x50, 0x60}
	if _, err := c.Write(first); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(second); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x10, 0x20 ^ 0x0F, 0x30, 0x40, 0x50, 0x60 ^ 0xFF}
	if !bytes.Equal(fake.bytes(), want) {
		t.Fatalf("delivered % x, want % x", fake.bytes(), want)
	}
	// The caller's buffers must not be mutated: corruption copies.
	if !bytes.Equal(first, []byte{0x10, 0x20, 0x30}) || !bytes.Equal(second, []byte{0x40, 0x50, 0x60}) {
		t.Fatalf("caller buffers mutated: % x, % x", first, second)
	}
}

func TestChunkWritesSplits(t *testing.T) {
	fake := &fakeConn{}
	c := WrapConn(fake, &Plan{ChunkWrites: 4})
	msg := []byte("0123456789")
	n, err := c.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(msg))
	}
	var sizes []int
	for _, w := range fake.writes {
		sizes = append(sizes, len(w))
	}
	if !reflect.DeepEqual(sizes, []int{4, 4, 2}) {
		t.Fatalf("chunk sizes = %v, want [4 4 2]", sizes)
	}
	if !bytes.Equal(fake.bytes(), msg) {
		t.Fatalf("reassembled %q, want %q", fake.bytes(), msg)
	}
}

func TestDuplicateWritesResend(t *testing.T) {
	fake := &fakeConn{}
	c := WrapConn(fake, &Plan{DuplicateWrites: map[int]bool{1: true}})
	for _, msg := range []string{"aa", "bb", "cc"} {
		n, err := c.Write([]byte(msg))
		if err != nil || n != len(msg) {
			t.Fatalf("Write(%q) = (%d, %v)", msg, n, err)
		}
	}
	if got := string(fake.bytes()); got != "aabbbbcc" {
		t.Fatalf("delivered %q, want %q (write index 1 duplicated)", got, "aabbbbcc")
	}
	// Written counts accepted caller bytes, not the duplicated resend.
	if c.Written() != 6 {
		t.Fatalf("Written() = %d, want 6", c.Written())
	}
}

func TestResetAfterBytesDeliversPrefixThenDies(t *testing.T) {
	fake := &fakeConn{}
	c := WrapConn(fake, &Plan{ResetAfterBytes: 10})
	if n, err := c.Write([]byte("123456")); n != 6 || err != nil {
		t.Fatalf("first Write = (%d, %v), want (6, nil)", n, err)
	}
	// This write crosses the 10-byte boundary: only 4 bytes pass.
	n, err := c.Write([]byte("789abcde"))
	if n != 4 {
		t.Fatalf("crossing Write delivered %d bytes, want 4", n)
	}
	if err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("crossing Write error = %v, want a reset error", err)
	}
	if got := string(fake.bytes()); got != "123456789a" {
		t.Fatalf("wire saw %q, want %q", got, "123456789a")
	}
	if !fake.closed {
		t.Fatal("underlying conn not closed on reset")
	}
	if c.Written() != 10 {
		t.Fatalf("Written() = %d, want 10", c.Written())
	}
	// Every later write fails without delivering anything.
	if n, err := c.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("post-reset Write = (%d, %v), want (0, error)", n, err)
	}
	if c.Written() != 10 {
		t.Fatalf("post-reset Written() = %d, want 10", c.Written())
	}
}

func TestResetExactlyAtBoundaryKeepsFullWrite(t *testing.T) {
	// A write that lands exactly on the boundary is delivered whole; the
	// next write dies with an empty prefix.
	fake := &fakeConn{}
	c := WrapConn(fake, &Plan{ResetAfterBytes: 4})
	if n, err := c.Write([]byte("wxyz")); n != 4 || err != nil {
		t.Fatalf("boundary Write = (%d, %v), want (4, nil)", n, err)
	}
	n, err := c.Write([]byte("!"))
	if n != 0 || err == nil {
		t.Fatalf("post-boundary Write = (%d, %v), want (0, error)", n, err)
	}
	if got := string(fake.bytes()); got != "wxyz" {
		t.Fatalf("wire saw %q, want %q", got, "wxyz")
	}
}

func TestFaultsCompose(t *testing.T) {
	// Corruption, chunking and duplication on one plan: the duplicated
	// frame re-sends the already-corrupted bytes, chunked the same way.
	fake := &fakeConn{}
	c := WrapConn(fake, &Plan{
		CorruptAt:       map[int64]byte{0: 0x01},
		ChunkWrites:     2,
		DuplicateWrites: map[int]bool{0: true},
	})
	if _, err := c.Write([]byte{0x10, 0x11, 0x12}); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x11, 0x11, 0x12, 0x11, 0x11, 0x12}
	if !bytes.Equal(fake.bytes(), want) {
		t.Fatalf("delivered % x, want % x", fake.bytes(), want)
	}
	var sizes []int
	for _, w := range fake.writes {
		sizes = append(sizes, len(w))
	}
	if !reflect.DeepEqual(sizes, []int{2, 1, 2, 1}) {
		t.Fatalf("chunk sizes = %v, want [2 1 2 1]", sizes)
	}
}

// fakeListener feeds a fixed queue of connections to Accept.
type fakeListener struct {
	conns []net.Conn
}

func (l *fakeListener) Accept() (net.Conn, error) {
	if len(l.conns) == 0 {
		return nil, net.ErrClosed
	}
	c := l.conns[0]
	l.conns = l.conns[1:]
	return c, nil
}

func (l *fakeListener) Close() error   { return nil }
func (l *fakeListener) Addr() net.Addr { return nil }

func TestListenerFailConnectSkipsToNext(t *testing.T) {
	first := &fakeConn{}
	second := &fakeConn{}
	ln := WrapListener(&fakeListener{conns: []net.Conn{first, second}}, func(i int) *Plan {
		if i == 0 {
			return &Plan{FailConnect: true}
		}
		return &Plan{ChunkWrites: 1}
	})
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if !first.closed {
		t.Fatal("FailConnect conn 0 was not closed")
	}
	// The returned conn is the second accept, wrapped with its own plan.
	if _, err := conn.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if len(second.writes) != 2 {
		t.Fatalf("plan for conn 1 not applied: %d underlying writes, want 2", len(second.writes))
	}
}

func TestListenerNilPlannerWrapsClean(t *testing.T) {
	inner := &fakeConn{}
	ln := WrapListener(&fakeListener{conns: []net.Conn{inner}}, nil)
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got := string(inner.bytes()); got != "ok" {
		t.Fatalf("delivered %q, want %q", got, "ok")
	}
}

func TestDialerFailConnectAndAttempts(t *testing.T) {
	dialed := 0
	inner := &fakeConn{}
	d := NewDialer(func(i int) *Plan {
		if i == 0 {
			return &Plan{FailConnect: true}
		}
		return &Plan{CorruptAt: map[int64]byte{0: 0xFF}}
	})
	d.Dial = func(addr string) (net.Conn, error) {
		dialed++
		return inner, nil
	}
	if _, err := d.DialContextFree("whatever:1"); err == nil {
		t.Fatal("attempt 0 should be refused by plan")
	}
	if dialed != 0 {
		t.Fatalf("FailConnect still dialed the network %d times", dialed)
	}
	conn, err := d.DialContextFree("whatever:1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Attempts() != 2 {
		t.Fatalf("Attempts() = %d, want 2", d.Attempts())
	}
	if _, err := conn.Write([]byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner.bytes(), []byte{0xFF}) {
		t.Fatalf("attempt 1 plan not applied: wire saw % x", inner.bytes())
	}
}

func TestRandomPlanDrivesConnReproducibly(t *testing.T) {
	// End-to-end determinism: one seed, two fresh conns, identical faulty
	// byte streams — the property the fault matrix relies on.
	payload := bytes.Repeat([]byte("0123456789abcdef"), 256)
	run := func() ([]byte, error) {
		fake := &fakeConn{}
		c := WrapConn(fake, RandomPlan(99, 1e-3, 0))
		var err error
		for i := 0; i < len(payload); i += 1024 {
			if _, err = c.Write(payload[i : i+1024]); err != nil {
				break
			}
		}
		return fake.bytes(), err
	}
	a, errA := run()
	b, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("runs disagree on error: %v vs %v", errA, errB)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different faulty streams")
	}
	if bytes.Equal(a, payload) {
		t.Fatal("corruptRate 1e-3 over 4 KB left the stream untouched — plan not applied?")
	}
}
