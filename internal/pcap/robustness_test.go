package pcap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The decoders face attacker-controlled bytes; whatever the input, they
// must return an error rather than panic or over-read.

func TestDecodeEthernetNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeEthernet(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeIPv4NeverPanicsOnMutatedHeaders(t *testing.T) {
	// Start from a valid packet and flip random bytes: the decoder must
	// survive every mutation.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(samplePackets()[0]); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()[24+16+14:]
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		mut := make([]byte, len(valid))
		copy(mut, valid)
		for n := 0; n < 1+rng.Intn(4); n++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		if rng.Intn(4) == 0 {
			mut = mut[:rng.Intn(len(mut)+1)]
		}
		_, _ = DecodeIPv4(mut)
	}
}

func TestReaderNeverPanicsOnTruncatedCaptures(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range samplePackets() {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	for cut := 0; cut <= len(full); cut += 7 {
		r, err := NewReader(bytes.NewReader(full[:cut]), nil)
		if err != nil {
			continue // header rejected; fine
		}
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}
