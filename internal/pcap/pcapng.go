package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
)

// pcapng support: modern tooling (Wireshark, tcpdump on many systems)
// writes the next-generation format by default, so a detector meant for
// downstream adoption has to read it. NGReader implements the subset a
// packet consumer needs — section header, interface description, enhanced
// and simple packet blocks — and skips everything else, per the format's
// "skip what you don't know" design.

// pcapng block type codes.
const (
	blockSHB = 0x0A0D0D0A // section header
	blockIDB = 0x00000001 // interface description
	blockSPB = 0x00000003 // simple packet
	blockEPB = 0x00000006 // enhanced packet

	byteOrderMagic = 0x1A2B3C4D
	maxBlockLen    = 16 << 20
)

// ngInterface is the per-interface state from an IDB.
type ngInterface struct {
	linkType uint16
	// tsPerSec is the timestamp resolution in units per second
	// (if_tsresol option; default 10^6).
	tsPerSec uint64
}

// NGReader streams TCP packet events from a pcapng capture. Like Reader,
// non-TCP frames and frames that do not cross the edge are skipped.
type NGReader struct {
	r       io.Reader
	order   binary.ByteOrder
	edge    *netmodel.EdgeNetwork
	ifaces  []ngInterface
	skipped int
}

// NewNGReader parses the leading section header and prepares to stream.
func NewNGReader(r io.Reader, edge *netmodel.EdgeNetwork) (*NGReader, error) {
	nr := &NGReader{r: r, edge: edge}
	blockType, body, err := nr.readBlockHeaderless()
	if err != nil {
		return nil, fmt.Errorf("pcapng: section header: %w", err)
	}
	if blockType != blockSHB {
		return nil, fmt.Errorf("pcapng: first block type %#x is not a section header", blockType)
	}
	if err := nr.parseSHB(body); err != nil {
		return nil, err
	}
	return nr, nil
}

// readBlockHeaderless reads one block before the byte order is known (the
// SHB): the byte-order magic inside the body disambiguates the length
// field.
func (nr *NGReader) readBlockHeaderless() (uint32, []byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(nr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	blockType := binary.LittleEndian.Uint32(hdr[0:])
	if blockType != blockSHB && binary.BigEndian.Uint32(hdr[0:]) != blockSHB {
		return blockType, nil, nil
	}
	switch binary.LittleEndian.Uint32(hdr[8:]) {
	case byteOrderMagic:
		nr.order = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(hdr[8:]) != byteOrderMagic {
			return 0, nil, fmt.Errorf("bad byte-order magic %#x", binary.LittleEndian.Uint32(hdr[8:]))
		}
		nr.order = binary.BigEndian
	}
	total := nr.order.Uint32(hdr[4:])
	if total < 28 || total > maxBlockLen || total%4 != 0 {
		return 0, nil, fmt.Errorf("implausible SHB length %d", total)
	}
	rest := make([]byte, total-12)
	if _, err := io.ReadFull(nr.r, rest); err != nil {
		return 0, nil, err
	}
	// body excludes the trailing total-length copy; keep the magic word.
	return blockSHB, append(hdr[8:12:12], rest[:len(rest)-4]...), nil
}

func (nr *NGReader) parseSHB(body []byte) error {
	if len(body) < 4 {
		return fmt.Errorf("pcapng: SHB body truncated")
	}
	nr.ifaces = nr.ifaces[:0] // a new section resets interface numbering
	return nil
}

// readBlock reads one block after byte order is established.
func (nr *NGReader) readBlock() (uint32, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(nr.r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF passes through
	}
	blockType := nr.order.Uint32(hdr[0:])
	total := nr.order.Uint32(hdr[4:])
	if total < 12 || total > maxBlockLen || total%4 != 0 {
		return 0, nil, fmt.Errorf("pcapng: implausible block length %d", total)
	}
	body := make([]byte, total-8)
	if _, err := io.ReadFull(nr.r, body); err != nil {
		return 0, nil, fmt.Errorf("pcapng: block body: %w", err)
	}
	trailer := nr.order.Uint32(body[len(body)-4:])
	if trailer != total {
		return 0, nil, fmt.Errorf("pcapng: trailing length %d != %d", trailer, total)
	}
	return blockType, body[:len(body)-4], nil
}

// parseIDB registers an interface.
func (nr *NGReader) parseIDB(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("pcapng: IDB truncated")
	}
	iface := ngInterface{
		linkType: nr.order.Uint16(body[0:]),
		tsPerSec: 1_000_000,
	}
	// Options start at offset 8: code(2) len(2) value(padded to 4).
	opts := body[8:]
	for len(opts) >= 4 {
		code := nr.order.Uint16(opts[0:])
		olen := int(nr.order.Uint16(opts[2:]))
		opts = opts[4:]
		if olen > len(opts) {
			break // malformed options: keep defaults
		}
		if code == 9 && olen >= 1 { // if_tsresol
			v := opts[0]
			if v&0x80 == 0 { // power of 10
				iface.tsPerSec = 1
				for i := byte(0); i < v && i < 19; i++ {
					iface.tsPerSec *= 10
				}
			} else { // power of 2
				iface.tsPerSec = 1 << (v & 0x7f)
			}
		}
		opts = opts[(olen+3)&^3:]
		if code == 0 { // opt_endofopt
			break
		}
	}
	nr.ifaces = append(nr.ifaces, iface)
	return nil
}

// Skipped reports frames dropped (non-TCP, unknown interface, non-edge).
func (nr *NGReader) Skipped() int { return nr.skipped }

// Next returns the next TCP packet event, or io.EOF at end of capture.
func (nr *NGReader) Next() (netmodel.Packet, error) {
	for {
		blockType, body, err := nr.readBlock()
		if errors.Is(err, io.EOF) {
			return netmodel.Packet{}, io.EOF
		}
		if err != nil {
			return netmodel.Packet{}, err
		}
		switch blockType {
		case blockSHB:
			if err := nr.parseSHB(body); err != nil {
				return netmodel.Packet{}, err
			}
		case blockIDB:
			if err := nr.parseIDB(body); err != nil {
				return netmodel.Packet{}, err
			}
		case blockEPB:
			pkt, ok, err := nr.parseEPB(body)
			if err != nil {
				return netmodel.Packet{}, err
			}
			if ok {
				return pkt, nil
			}
		case blockSPB:
			pkt, ok := nr.parseSPB(body)
			if ok {
				return pkt, nil
			}
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}

func (nr *NGReader) parseEPB(body []byte) (netmodel.Packet, bool, error) {
	if len(body) < 20 {
		return netmodel.Packet{}, false, fmt.Errorf("pcapng: EPB truncated")
	}
	ifID := int(nr.order.Uint32(body[0:]))
	if ifID >= len(nr.ifaces) {
		nr.skipped++
		return netmodel.Packet{}, false, nil
	}
	iface := nr.ifaces[ifID]
	ts := uint64(nr.order.Uint32(body[4:]))<<32 | uint64(nr.order.Uint32(body[8:]))
	capLen := int(nr.order.Uint32(body[12:]))
	origLen := int(nr.order.Uint32(body[16:]))
	if capLen < 0 || 20+capLen > len(body) {
		return netmodel.Packet{}, false, fmt.Errorf("pcapng: EPB captured length %d overruns block", capLen)
	}
	if iface.linkType != linkTypeEthernet {
		nr.skipped++
		return netmodel.Packet{}, false, nil
	}
	pkt, err := DecodeEthernet(body[20 : 20+capLen])
	if err != nil {
		nr.skipped++
		return netmodel.Packet{}, false, nil
	}
	sec := ts / iface.tsPerSec
	frac := ts % iface.tsPerSec
	pkt.Timestamp = time.Unix(int64(sec), int64(frac*uint64(time.Second)/iface.tsPerSec)).UTC()
	pkt.Wire = origLen
	if !nr.classify(&pkt) {
		return netmodel.Packet{}, false, nil
	}
	return pkt, true, nil
}

func (nr *NGReader) parseSPB(body []byte) (netmodel.Packet, bool) {
	if len(body) < 4 || len(nr.ifaces) == 0 || nr.ifaces[0].linkType != linkTypeEthernet {
		nr.skipped++
		return netmodel.Packet{}, false
	}
	origLen := int(nr.order.Uint32(body[0:]))
	data := body[4:]
	if origLen < len(data) {
		data = data[:origLen]
	}
	pkt, err := DecodeEthernet(data)
	if err != nil {
		nr.skipped++
		return netmodel.Packet{}, false
	}
	pkt.Wire = origLen
	if !nr.classify(&pkt) {
		return netmodel.Packet{}, false
	}
	return pkt, true
}

func (nr *NGReader) classify(pkt *netmodel.Packet) bool {
	if nr.edge == nil {
		pkt.Dir = netmodel.Inbound
		return true
	}
	dir, ok := nr.edge.Classify(pkt.SrcIP, pkt.DstIP)
	if !ok {
		nr.skipped++
		return false
	}
	pkt.Dir = dir
	return true
}

// PacketSource abstracts the two capture formats for replay loops.
type PacketSource interface {
	Next() (netmodel.Packet, error)
	Skipped() int
}

var (
	_ PacketSource = (*Reader)(nil)
	_ PacketSource = (*NGReader)(nil)
)

// OpenReader sniffs the capture format (classic pcap vs pcapng) from the
// first four bytes and returns the matching reader.
func OpenReader(r io.Reader, edge *netmodel.EdgeNetwork) (PacketSource, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("pcap: read magic: %w", err)
	}
	joined := io.MultiReader(newPrefixReader(magic[:]), r)
	if binary.LittleEndian.Uint32(magic[:]) == blockSHB {
		return NewNGReader(joined, edge)
	}
	return NewReader(joined, edge)
}

// newPrefixReader returns a reader over a copied prefix.
func newPrefixReader(b []byte) io.Reader {
	cp := make([]byte, len(b))
	copy(cp, b)
	return &prefixReader{data: cp}
}

type prefixReader struct{ data []byte }

func (p *prefixReader) Read(buf []byte) (int, error) {
	if len(p.data) == 0 {
		return 0, io.EOF
	}
	n := copy(buf, p.data)
	p.data = p.data[n:]
	return n, nil
}

// NGWriter writes a pcapng capture of synthesized Ethernet/IPv4/TCP
// frames: one section, one Ethernet interface at microsecond resolution,
// one enhanced packet block per packet. Wireshark and tcpdump read the
// output directly.
type NGWriter struct {
	w        io.Writer
	wroteHdr bool
	frameBuf bytes.Buffer
}

// NewNGWriter wraps w; the section and interface headers are emitted
// lazily on the first packet.
func NewNGWriter(w io.Writer) *NGWriter {
	return &NGWriter{w: w}
}

// writeBlock frames one pcapng block (padding the body to 4 bytes).
func (nw *NGWriter) writeBlock(blockType uint32, body []byte) error {
	pad := (4 - len(body)%4) % 4
	total := uint32(12 + len(body) + pad)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], blockType)
	binary.LittleEndian.PutUint32(hdr[4:], total)
	if _, err := nw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := nw.w.Write(body); err != nil {
		return err
	}
	var tail [8]byte // up to 3 pad bytes + 4 length bytes
	binary.LittleEndian.PutUint32(tail[pad:], total)
	_, err := nw.w.Write(tail[:pad+4])
	return err
}

func (nw *NGWriter) writeHeaders() error {
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:], 1)          // major
	binary.LittleEndian.PutUint64(shb[8:], ^uint64(0)) // unknown section length
	if err := nw.writeBlock(blockSHB, shb); err != nil {
		return err
	}
	idb := make([]byte, 8)
	binary.LittleEndian.PutUint16(idb[0:], linkTypeEthernet)
	binary.LittleEndian.PutUint32(idb[4:], 65535) // snaplen
	return nw.writeBlock(blockIDB, idb)
}

// WritePacket appends one packet as an enhanced packet block.
func (nw *NGWriter) WritePacket(pkt netmodel.Packet) error {
	if !nw.wroteHdr {
		if err := nw.writeHeaders(); err != nil {
			return fmt.Errorf("pcapng: headers: %w", err)
		}
		nw.wroteHdr = true
	}
	// Reuse the classic writer's frame synthesis.
	nw.frameBuf.Reset()
	cw := NewWriter(&nw.frameBuf)
	if err := cw.WritePacket(pkt); err != nil {
		return err
	}
	frame := nw.frameBuf.Bytes()[globalHeaderLen+packetHeaderLen:]
	ts := uint64(pkt.Timestamp.UnixMicro())
	origLen := len(frame)
	if pkt.Wire > origLen {
		origLen = pkt.Wire
	}
	body := make([]byte, 20, 20+len(frame))
	binary.LittleEndian.PutUint32(body[0:], 0) // interface 0
	binary.LittleEndian.PutUint32(body[4:], uint32(ts>>32))
	binary.LittleEndian.PutUint32(body[8:], uint32(ts))
	binary.LittleEndian.PutUint32(body[12:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(body[16:], uint32(origLen))
	body = append(body, frame...)
	return nw.writeBlock(blockEPB, body)
}
