package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
)

func testEdge(t *testing.T) *netmodel.EdgeNetwork {
	t.Helper()
	e, err := netmodel.NewEdgeNetwork("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func samplePackets() []netmodel.Packet {
	base := time.Date(2005, 5, 10, 12, 0, 0, 0, time.UTC)
	return []netmodel.Packet{
		{
			Timestamp: base,
			SrcIP:     netmodel.MustParseIPv4("192.168.9.9"),
			DstIP:     netmodel.MustParseIPv4("10.1.2.3"),
			SrcPort:   31337, DstPort: 80,
			Flags: netmodel.FlagSYN,
			Dir:   netmodel.Inbound,
			Wire:  60,
		},
		{
			Timestamp: base.Add(3 * time.Millisecond),
			SrcIP:     netmodel.MustParseIPv4("10.1.2.3"),
			DstIP:     netmodel.MustParseIPv4("192.168.9.9"),
			SrcPort:   80, DstPort: 31337,
			Flags: netmodel.FlagSYN | netmodel.FlagACK,
			Dir:   netmodel.Outbound,
			Wire:  60,
		},
		{
			Timestamp: base.Add(7 * time.Second),
			SrcIP:     netmodel.MustParseIPv4("172.16.5.5"),
			DstIP:     netmodel.MustParseIPv4("10.200.0.1"),
			SrcPort:   4000, DstPort: 443,
			Flags: netmodel.FlagRST,
			Dir:   netmodel.Inbound,
			Wire:  40,
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := samplePackets()
	for _, p := range want {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf, testEdge(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.SrcIP != exp.SrcIP || got.DstIP != exp.DstIP ||
			got.SrcPort != exp.SrcPort || got.DstPort != exp.DstPort {
			t.Errorf("packet %d addressing mismatch: %+v", i, got)
		}
		if got.Flags != exp.Flags {
			t.Errorf("packet %d flags %v, want %v", i, got.Flags, exp.Flags)
		}
		if got.Dir != exp.Dir {
			t.Errorf("packet %d direction %v, want %v", i, got.Dir, exp.Dir)
		}
		if !got.Timestamp.Equal(exp.Timestamp) {
			t.Errorf("packet %d timestamp %v, want %v", i, got.Timestamp, exp.Timestamp)
		}
		if got.Wire != exp.Wire && got.Wire != 54 {
			t.Errorf("packet %d wire %d", i, got.Wire)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want io.EOF at end, got %v", err)
	}
}

func TestReaderSkipsNonEdgeTraffic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pkts := samplePackets()
	// internal-to-internal packet must be skipped
	internal := pkts[0]
	internal.SrcIP = netmodel.MustParseIPv4("10.0.0.1")
	internal.DstIP = netmodel.MustParseIPv4("10.0.0.2")
	if err := w.WritePacket(internal); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(pkts[0]); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, testEdge(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != pkts[0].SrcIP {
		t.Error("skipping logic returned wrong packet")
	}
	if r.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", r.Skipped())
	}
}

func TestReaderNilEdgeKeepsEverything(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(samplePackets()[0]); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Dir != netmodel.Inbound {
		t.Error("nil edge should default to Inbound")
	}
}

func TestNewReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("definitely not pcap data....")), nil); err == nil {
		t.Error("garbage magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2}), nil); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestNewReaderRejectsNonEthernet(t *testing.T) {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], MagicMicroseconds)
	le.PutUint32(hdr[20:], 101) // LINKTYPE_RAW
	if _, err := NewReader(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Error("non-Ethernet link type accepted")
	}
}

func TestBigEndianCapture(t *testing.T) {
	// Synthesize a big-endian capture of one frame by writing LE and then
	// byte-swapping the global and record headers.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(samplePackets()[0]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	be := make([]byte, len(data))
	copy(be, data)
	swap32 := func(b []byte) {
		b[0], b[1], b[2], b[3] = b[3], b[2], b[1], b[0]
	}
	swap16 := func(b []byte) { b[0], b[1] = b[1], b[0] }
	swap32(be[0:4])
	swap16(be[4:6])
	swap16(be[6:8])
	swap32(be[8:12])
	swap32(be[12:16])
	swap32(be[16:20])
	swap32(be[20:24])
	for off := 24; off < 24+16; off += 4 {
		swap32(be[off : off+4])
	}
	r, err := NewReader(bytes.NewReader(be), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.DstPort != 80 {
		t.Errorf("big-endian decode wrong: %+v", got)
	}
}

func TestDecodeIPv4Errors(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WritePacket(samplePackets()[0]); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()[24+16+14:] // strip global hdr, record hdr, ethernet
	}
	t.Run("valid baseline", func(t *testing.T) {
		if _, err := DecodeIPv4(valid()); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeIPv4(valid()[:10]); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("ipv6 version", func(t *testing.T) {
		p := valid()
		p[0] = 0x65
		if _, err := DecodeIPv4(p); !errors.Is(err, ErrNotTCP) {
			t.Errorf("want ErrNotTCP, got %v", err)
		}
	})
	t.Run("udp", func(t *testing.T) {
		p := valid()
		p[9] = 17
		if _, err := DecodeIPv4(p); !errors.Is(err, ErrNotTCP) {
			t.Errorf("want ErrNotTCP, got %v", err)
		}
	})
	t.Run("fragment", func(t *testing.T) {
		p := valid()
		binary.BigEndian.PutUint16(p[6:], 100) // nonzero fragment offset
		if _, err := DecodeIPv4(p); !errors.Is(err, ErrNotTCP) {
			t.Errorf("want ErrNotTCP, got %v", err)
		}
	})
	t.Run("bad ihl", func(t *testing.T) {
		p := valid()
		p[0] = 0x42 // IHL 2 words
		if _, err := DecodeIPv4(p); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("short tcp", func(t *testing.T) {
		if _, err := DecodeIPv4(valid()[:25]); err == nil {
			t.Error("accepted")
		}
	})
}

func TestDecodeEthernetNonIP(t *testing.T) {
	frame := make([]byte, 60)
	binary.BigEndian.PutUint16(frame[12:], 0x0806) // ARP
	if _, err := DecodeEthernet(frame); !errors.Is(err, ErrNotTCP) {
		t.Errorf("want ErrNotTCP, got %v", err)
	}
	if _, err := DecodeEthernet(frame[:5]); err == nil || errors.Is(err, ErrNotTCP) {
		t.Errorf("short frame should be a hard error, got %v", err)
	}
}

func TestIPChecksumValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(samplePackets()[0]); err != nil {
		t.Fatal(err)
	}
	ipHdr := buf.Bytes()[24+16+14 : 24+16+14+20]
	// Recomputing the checksum over a valid header (checksum included)
	// must yield zero.
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ipHdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if ^uint16(sum) != 0 {
		t.Errorf("IP checksum invalid: residual %#x", ^uint16(sum))
	}
}

func TestEdgeNetworkParsing(t *testing.T) {
	if _, err := netmodel.NewEdgeNetwork(); err == nil {
		t.Error("empty prefix list accepted")
	}
	if _, err := netmodel.NewEdgeNetwork("10.0.0.0"); err == nil {
		t.Error("missing length accepted")
	}
	if _, err := netmodel.NewEdgeNetwork("10.0.0.0/33"); err == nil {
		t.Error("length 33 accepted")
	}
	if _, err := netmodel.NewEdgeNetwork("bogus/8"); err == nil {
		t.Error("bad address accepted")
	}
	e, err := netmodel.NewEdgeNetwork("129.105.0.0/16", "165.124.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Contains(netmodel.MustParseIPv4("129.105.7.7")) {
		t.Error("inside address not matched")
	}
	if e.Contains(netmodel.MustParseIPv4("8.8.8.8")) {
		t.Error("outside address matched")
	}
	if dir, ok := e.Classify(netmodel.MustParseIPv4("8.8.8.8"), netmodel.MustParseIPv4("165.124.1.1")); !ok || dir != netmodel.Inbound {
		t.Error("inbound classification failed")
	}
	if dir, ok := e.Classify(netmodel.MustParseIPv4("165.124.1.1"), netmodel.MustParseIPv4("8.8.8.8")); !ok || dir != netmodel.Outbound {
		t.Error("outbound classification failed")
	}
	if _, ok := e.Classify(netmodel.MustParseIPv4("8.8.8.8"), netmodel.MustParseIPv4("9.9.9.9")); ok {
		t.Error("transit traffic classified")
	}
	if _, ok := e.Classify(netmodel.MustParseIPv4("129.105.1.1"), netmodel.MustParseIPv4("165.124.1.1")); ok {
		t.Error("internal traffic classified")
	}
}

func TestZeroLengthPrefixMatchesAll(t *testing.T) {
	e, err := netmodel.NewEdgeNetwork("0.0.0.0/0")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Contains(netmodel.MustParseIPv4("203.0.113.7")) {
		t.Error("/0 should match everything")
	}
}
