package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
)

// ngBuilder assembles pcapng streams for tests.
type ngBuilder struct {
	buf   bytes.Buffer
	order binary.ByteOrder
}

func newNGBuilder() *ngBuilder { return &ngBuilder{order: binary.LittleEndian} }

func (b *ngBuilder) block(blockType uint32, body []byte) {
	for len(body)%4 != 0 {
		body = append(body, 0)
	}
	total := uint32(12 + len(body))
	hdr := make([]byte, 8)
	b.order.PutUint32(hdr[0:], blockType)
	b.order.PutUint32(hdr[4:], total)
	b.buf.Write(hdr)
	b.buf.Write(body)
	tail := make([]byte, 4)
	b.order.PutUint32(tail, total)
	b.buf.Write(tail)
}

func (b *ngBuilder) shb() {
	body := make([]byte, 16)
	b.order.PutUint32(body[0:], byteOrderMagic)
	b.order.PutUint16(body[4:], 1) // major
	// section length: -1 (unknown)
	b.order.PutUint64(body[8:], ^uint64(0))
	b.block(blockSHB, body)
}

// idb appends an interface description; tsresol 0 means "omit option".
func (b *ngBuilder) idb(linkType uint16, tsresol byte) {
	body := make([]byte, 8)
	b.order.PutUint16(body[0:], linkType)
	b.order.PutUint32(body[4:], 65535) // snaplen
	if tsresol != 0 {
		opt := make([]byte, 8)
		b.order.PutUint16(opt[0:], 9) // if_tsresol
		b.order.PutUint16(opt[2:], 1)
		opt[4] = tsresol
		body = append(body, opt...)
	}
	b.block(blockIDB, body)
}

// epb appends an enhanced packet block holding a synthesized TCP frame.
func (b *ngBuilder) epb(ifID uint32, ts uint64, pkt netmodel.Packet) {
	frame := synthFrame(pkt)
	body := make([]byte, 20, 20+len(frame))
	b.order.PutUint32(body[0:], ifID)
	b.order.PutUint32(body[4:], uint32(ts>>32))
	b.order.PutUint32(body[8:], uint32(ts))
	b.order.PutUint32(body[12:], uint32(len(frame)))
	b.order.PutUint32(body[16:], uint32(len(frame)))
	body = append(body, frame...)
	b.block(blockEPB, body)
}

// synthFrame builds an Ethernet/IPv4/TCP frame via the classic writer.
func synthFrame(pkt netmodel.Packet) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(pkt); err != nil {
		panic(err)
	}
	return buf.Bytes()[globalHeaderLen+packetHeaderLen:]
}

func TestNGReaderBasic(t *testing.T) {
	b := newNGBuilder()
	b.shb()
	b.idb(linkTypeEthernet, 6) // microseconds, explicit
	want := samplePackets()
	for i, p := range want {
		b.epb(0, uint64(p.Timestamp.UnixMicro()), p)
		_ = i
	}
	r, err := NewNGReader(bytes.NewReader(b.buf.Bytes()), testEdge(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, exp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.SrcIP != exp.SrcIP || got.DstPort != exp.DstPort || got.Flags != exp.Flags {
			t.Errorf("packet %d: %+v", i, got)
		}
		if !got.Timestamp.Equal(exp.Timestamp) {
			t.Errorf("packet %d timestamp %v, want %v", i, got.Timestamp, exp.Timestamp)
		}
		if got.Dir != exp.Dir {
			t.Errorf("packet %d dir %v, want %v", i, got.Dir, exp.Dir)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestNGReaderNanosecondResolution(t *testing.T) {
	b := newNGBuilder()
	b.shb()
	b.idb(linkTypeEthernet, 9) // nanoseconds
	p := samplePackets()[0]
	p.Timestamp = time.Date(2005, 5, 10, 12, 0, 0, 123456789, time.UTC)
	b.epb(0, uint64(p.Timestamp.UnixNano()), p)
	r, err := NewNGReader(bytes.NewReader(b.buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Timestamp.Equal(p.Timestamp) {
		t.Errorf("nanosecond timestamp %v, want %v", got.Timestamp, p.Timestamp)
	}
}

func TestNGReaderDefaultResolution(t *testing.T) {
	b := newNGBuilder()
	b.shb()
	b.idb(linkTypeEthernet, 0) // no tsresol option ⇒ microseconds
	p := samplePackets()[0]
	b.epb(0, uint64(p.Timestamp.UnixMicro()), p)
	r, err := NewNGReader(bytes.NewReader(b.buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Timestamp.Equal(p.Timestamp) {
		t.Errorf("default-resolution timestamp %v, want %v", got.Timestamp, p.Timestamp)
	}
}

func TestNGReaderSkipsUnknownBlocksAndInterfaces(t *testing.T) {
	b := newNGBuilder()
	b.shb()
	b.idb(linkTypeEthernet, 6)
	b.idb(101, 6) // raw-IP interface: packets from it are skipped
	b.block(0x0BAD0001, []byte{1, 2, 3, 4})
	p := samplePackets()[0]
	b.epb(1, 0, p) // wrong interface link type
	b.epb(7, 0, p) // unknown interface id
	b.epb(0, uint64(p.Timestamp.UnixMicro()), p)
	r, err := NewNGReader(bytes.NewReader(b.buf.Bytes()), testEdge(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != p.SrcIP {
		t.Error("wrong packet surfaced")
	}
	if r.Skipped() != 2 {
		t.Errorf("Skipped = %d, want 2", r.Skipped())
	}
}

func TestNGReaderRejectsGarbage(t *testing.T) {
	if _, err := NewNGReader(bytes.NewReader([]byte("garbage stream here!")), nil); err == nil {
		t.Error("garbage accepted")
	}
	// SHB with a broken byte-order magic.
	raw := make([]byte, 12)
	binary.LittleEndian.PutUint32(raw[0:], blockSHB)
	binary.LittleEndian.PutUint32(raw[4:], 28)
	binary.LittleEndian.PutUint32(raw[8:], 0xDEADBEEF)
	if _, err := NewNGReader(bytes.NewReader(raw), nil); err == nil {
		t.Error("bad byte-order magic accepted")
	}
}

func TestNGReaderTruncationIsError(t *testing.T) {
	b := newNGBuilder()
	b.shb()
	b.idb(linkTypeEthernet, 6)
	b.epb(0, 0, samplePackets()[0])
	full := b.buf.Bytes()
	for cut := 1; cut < len(full); cut += 13 {
		r, err := NewNGReader(bytes.NewReader(full[:cut]), nil)
		if err != nil {
			continue
		}
		for {
			if _, err := r.Next(); err != nil {
				break // error or EOF; must not hang or panic
			}
		}
	}
}

func TestOpenReaderAutoDetects(t *testing.T) {
	// Classic capture.
	var classic bytes.Buffer
	w := NewWriter(&classic)
	if err := w.WritePacket(samplePackets()[0]); err != nil {
		t.Fatal(err)
	}
	src, err := OpenReader(&classic, testEdge(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*Reader); !ok {
		t.Errorf("classic capture opened as %T", src)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}

	// pcapng capture.
	b := newNGBuilder()
	b.shb()
	b.idb(linkTypeEthernet, 6)
	b.epb(0, 0, samplePackets()[0])
	src, err = OpenReader(bytes.NewReader(b.buf.Bytes()), testEdge(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*NGReader); !ok {
		t.Errorf("pcapng capture opened as %T", src)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenReader(bytes.NewReader([]byte{1}), nil); err == nil {
		t.Error("one-byte stream accepted")
	}
}
