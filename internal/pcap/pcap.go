// Package pcap reads and writes libpcap capture files and encodes/decodes
// the Ethernet/IPv4/TCP headers HiFIND consumes. It replaces the gopacket
// dependency the paper's tooling would use: the repository is stdlib-only,
// and HiFIND needs just the TCP control-plane fields (addresses, ports,
// flags), which a few dozen lines of fixed-offset parsing deliver at a
// fraction of a general decoder's cost.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/hifind/hifind/internal/netmodel"
)

const (
	// MagicMicroseconds is the classic little-endian pcap magic.
	MagicMicroseconds = 0xa1b2c3d4
	// MagicNanoseconds marks captures with nanosecond timestamps.
	MagicNanoseconds = 0xa1b23c4d

	linkTypeEthernet = 1

	globalHeaderLen = 24
	packetHeaderLen = 16
	ethernetLen     = 14
	ipv4MinLen      = 20
	tcpMinLen       = 20

	etherTypeIPv4 = 0x0800
	protoTCP      = 6
)

// ErrNotTCP is returned by decode paths when a frame is well-formed but
// not an IPv4/TCP packet; readers skip such frames silently.
var ErrNotTCP = errors.New("pcap: not an IPv4/TCP packet")

// Writer writes a pcap file of synthesized Ethernet/IPv4/TCP frames.
type Writer struct {
	w        io.Writer
	wroteHdr bool
	snaplen  uint32
	frame    [ethernetLen + ipv4MinLen + tcpMinLen]byte
	hdr      [packetHeaderLen]byte
}

// NewWriter wraps w. The global header is emitted lazily on the first
// packet so that constructing a Writer never performs I/O.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, snaplen: 65535}
}

// writeGlobalHeader emits the classic microsecond-resolution header.
func (pw *Writer) writeGlobalHeader() error {
	var hdr [globalHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], MagicMicroseconds)
	le.PutUint16(hdr[4:], 2) // major
	le.PutUint16(hdr[6:], 4) // minor
	// thiszone and sigfigs stay zero.
	le.PutUint32(hdr[16:], pw.snaplen)
	le.PutUint32(hdr[20:], linkTypeEthernet)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket synthesizes a minimal Ethernet+IPv4+TCP frame for the packet
// event and appends it to the capture. The frame is 54 bytes on the wire;
// the pcap record's orig_len preserves pkt.Wire when it is larger, so
// traffic-volume accounting survives the round trip.
func (pw *Writer) WritePacket(pkt netmodel.Packet) error {
	if !pw.wroteHdr {
		if err := pw.writeGlobalHeader(); err != nil {
			return fmt.Errorf("pcap: global header: %w", err)
		}
		pw.wroteHdr = true
	}
	frame := pw.frame[:]
	// Ethernet: synthetic MACs, IPv4 ethertype.
	for i := 0; i < 12; i++ {
		frame[i] = 0x02 // locally administered, deterministic
	}
	binary.BigEndian.PutUint16(frame[12:], etherTypeIPv4)

	ip := frame[ethernetLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:], ipv4MinLen+tcpMinLen)
	binary.BigEndian.PutUint16(ip[4:], 0)      // id
	binary.BigEndian.PutUint16(ip[6:], 0x4000) // DF
	ip[8] = 64                                 // ttl
	ip[9] = protoTCP
	binary.BigEndian.PutUint16(ip[10:], 0) // checksum placeholder
	src, dst := pkt.SrcIP.Octets(), pkt.DstIP.Octets()
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:ipv4MinLen]))

	tcp := ip[ipv4MinLen:]
	binary.BigEndian.PutUint16(tcp[0:], pkt.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], pkt.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], 0) // seq
	binary.BigEndian.PutUint32(tcp[8:], 0) // ack
	tcp[12] = 5 << 4                       // data offset 5 words
	tcp[13] = byte(pkt.Flags)
	binary.BigEndian.PutUint16(tcp[14:], 65535) // window
	binary.BigEndian.PutUint16(tcp[16:], 0)     // checksum (not validated by readers here)
	binary.BigEndian.PutUint16(tcp[18:], 0)     // urgent

	origLen := len(frame)
	if pkt.Wire > origLen {
		origLen = pkt.Wire
	}
	le := binary.LittleEndian
	ts := pkt.Timestamp
	le.PutUint32(pw.hdr[0:], uint32(ts.Unix()))
	le.PutUint32(pw.hdr[4:], uint32(ts.Nanosecond()/1000))
	le.PutUint32(pw.hdr[8:], uint32(len(frame)))
	le.PutUint32(pw.hdr[12:], uint32(origLen))
	if _, err := pw.w.Write(pw.hdr[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := pw.w.Write(frame); err != nil {
		return fmt.Errorf("pcap: record body: %w", err)
	}
	return nil
}

// Reader decodes a pcap file into packet events, skipping non-IPv4/TCP
// frames. Direction is derived from the supplied edge network; frames that
// do not cross the edge are skipped too.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	nanos   bool
	edge    *netmodel.EdgeNetwork
	buf     []byte
	hdr     [packetHeaderLen]byte
	skipped int
}

// NewReader parses the global header and prepares to stream packets.
// edge may be nil, in which case every packet is reported with direction
// Inbound (useful when the capture point already filtered one direction).
func NewReader(r io.Reader, edge *netmodel.EdgeNetwork) (*Reader, error) {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	pr := &Reader{r: r, edge: edge, buf: make([]byte, 0, 2048)}
	magicLE := binary.LittleEndian.Uint32(hdr[0:])
	magicBE := binary.BigEndian.Uint32(hdr[0:])
	switch {
	case magicLE == MagicMicroseconds:
		pr.order = binary.LittleEndian
	case magicLE == MagicNanoseconds:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicBE == MagicMicroseconds:
		pr.order = binary.BigEndian
	case magicBE == MagicNanoseconds:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: unrecognized magic %#x", magicLE)
	}
	if lt := pr.order.Uint32(hdr[20:]); lt != linkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d (want Ethernet)", lt)
	}
	return pr, nil
}

// Skipped reports how many frames were dropped as non-TCP, truncated, or
// not edge-crossing.
func (pr *Reader) Skipped() int { return pr.skipped }

// Next returns the next TCP packet event, or io.EOF at end of capture.
func (pr *Reader) Next() (netmodel.Packet, error) {
	for {
		if _, err := io.ReadFull(pr.r, pr.hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return netmodel.Packet{}, io.EOF
			}
			return netmodel.Packet{}, fmt.Errorf("pcap: record header: %w", err)
		}
		sec := pr.order.Uint32(pr.hdr[0:])
		frac := pr.order.Uint32(pr.hdr[4:])
		inclLen := pr.order.Uint32(pr.hdr[8:])
		origLen := pr.order.Uint32(pr.hdr[12:])
		if inclLen > 1<<20 {
			return netmodel.Packet{}, fmt.Errorf("pcap: implausible record length %d", inclLen)
		}
		if cap(pr.buf) < int(inclLen) {
			pr.buf = make([]byte, inclLen)
		}
		data := pr.buf[:inclLen]
		if _, err := io.ReadFull(pr.r, data); err != nil {
			return netmodel.Packet{}, fmt.Errorf("pcap: record body: %w", err)
		}
		ns := int64(frac) * 1000
		if pr.nanos {
			ns = int64(frac)
		}
		pkt, err := DecodeEthernet(data)
		if err != nil {
			pr.skipped++
			continue
		}
		pkt.Timestamp = time.Unix(int64(sec), ns).UTC()
		pkt.Wire = int(origLen)
		if pr.edge != nil {
			dir, ok := pr.edge.Classify(pkt.SrcIP, pkt.DstIP)
			if !ok {
				pr.skipped++
				continue
			}
			pkt.Dir = dir
		} else {
			pkt.Dir = netmodel.Inbound
		}
		return pkt, nil
	}
}

// DecodeEthernet parses an Ethernet frame carrying IPv4/TCP into a packet
// event (timestamp, wire length and direction left for the caller).
// Returns ErrNotTCP for other traffic.
func DecodeEthernet(frame []byte) (netmodel.Packet, error) {
	if len(frame) < ethernetLen {
		return netmodel.Packet{}, fmt.Errorf("pcap: frame too short (%d bytes)", len(frame))
	}
	if binary.BigEndian.Uint16(frame[12:]) != etherTypeIPv4 {
		return netmodel.Packet{}, ErrNotTCP
	}
	return DecodeIPv4(frame[ethernetLen:])
}

// DecodeIPv4 parses an IPv4 packet carrying TCP.
func DecodeIPv4(pkt []byte) (netmodel.Packet, error) {
	if len(pkt) < ipv4MinLen {
		return netmodel.Packet{}, fmt.Errorf("pcap: IPv4 header truncated (%d bytes)", len(pkt))
	}
	if pkt[0]>>4 != 4 {
		return netmodel.Packet{}, ErrNotTCP
	}
	ihl := int(pkt[0]&0x0f) * 4
	if ihl < ipv4MinLen || len(pkt) < ihl {
		return netmodel.Packet{}, fmt.Errorf("pcap: bad IHL %d", ihl)
	}
	if pkt[9] != protoTCP {
		return netmodel.Packet{}, ErrNotTCP
	}
	// Fragments past offset zero carry no TCP header.
	if fragOff := binary.BigEndian.Uint16(pkt[6:]) & 0x1fff; fragOff != 0 {
		return netmodel.Packet{}, ErrNotTCP
	}
	tcp := pkt[ihl:]
	if len(tcp) < tcpMinLen {
		return netmodel.Packet{}, fmt.Errorf("pcap: TCP header truncated (%d bytes)", len(tcp))
	}
	return netmodel.Packet{
		SrcIP:   netmodel.IPv4(binary.BigEndian.Uint32(pkt[12:])),
		DstIP:   netmodel.IPv4(binary.BigEndian.Uint32(pkt[16:])),
		SrcPort: binary.BigEndian.Uint16(tcp[0:]),
		DstPort: binary.BigEndian.Uint16(tcp[2:]),
		Flags:   netmodel.TCPFlags(tcp[13]),
	}, nil
}

// ipChecksum computes the standard Internet checksum over the IPv4 header.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
