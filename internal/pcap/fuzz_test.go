package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/hifind/hifind/internal/netmodel"
)

// fuzzSeedCapture builds a well-formed capture via the Writer so the fuzzer
// starts from inputs that exercise the deep decode paths, not just the
// magic-number check.
func fuzzSeedCapture(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range samplePackets() {
		if err := w.WritePacket(p); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzReadPacket feeds arbitrary bytes through NewReader/Next and the raw
// frame decoders. Malformed input must surface as an error, never as a
// panic, an out-of-range slice access, or an unbounded allocation.
func FuzzReadPacket(f *testing.F) {
	valid := fuzzSeedCapture(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:globalHeaderLen])        // header only, no records
	f.Add(valid[:globalHeaderLen+7])      // truncated record header
	f.Add(valid[:len(valid)-5])           // truncated record body
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // bad magic

	// A record header claiming an implausibly large body must be rejected
	// up front, not trusted as an allocation size.
	huge := append([]byte(nil), valid[:globalHeaderLen]...)
	var rec [packetHeaderLen]byte
	binary.LittleEndian.PutUint32(rec[8:], 1<<30)
	f.Add(append(huge, rec[:]...))

	edge, err := netmodel.NewEdgeNetwork("10.0.0.0/8")
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, e := range []*netmodel.EdgeNetwork{nil, edge} {
			r, err := NewReader(bytes.NewReader(data), e)
			if err != nil {
				continue
			}
			// Each Next consumes ≥ packetHeaderLen bytes or errors, so the
			// loop terminates; the bound is pure paranoia.
			for i := 0; i <= len(data)/packetHeaderLen; i++ {
				pkt, err := r.Next()
				if err != nil {
					break
				}
				if e != nil && pkt.Dir != netmodel.Inbound && pkt.Dir != netmodel.Outbound {
					t.Fatalf("edge-classified packet has direction %v", pkt.Dir)
				}
			}
			if r.Skipped() < 0 {
				t.Fatalf("negative skip count %d", r.Skipped())
			}
		}
		// The frame decoders must also hold on arbitrary raw input.
		if _, err := DecodeEthernet(data); err == nil {
			// A successful decode implies the frame really carried the
			// minimum Ethernet+IPv4+TCP layout.
			if len(data) < ethernetLen+ipv4MinLen+tcpMinLen {
				t.Fatalf("DecodeEthernet accepted a %d-byte frame", len(data))
			}
		}
		_, _ = DecodeIPv4(data)
	})
}
