package sketch

import (
	"testing"
	"testing/quick"
)

func TestMod61(t *testing.T) {
	tests := []struct {
		in, want uint64
	}{
		{0, 0},
		{1, 1},
		{mersenne61, 0},
		{mersenne61 + 1, 1},
		{mersenne61 - 1, mersenne61 - 1},
		{^uint64(0), 7}, // 2^64−1 = 8·(2^61−1) + 7
	}
	for _, tt := range tests {
		if got := mod61(tt.in); got != tt.want {
			t.Errorf("mod61(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestMulMod61MatchesBigIntSemantics(t *testing.T) {
	// Verify against schoolbook double-and-add multiplication mod p.
	slowMul := func(a, b uint64) uint64 {
		a, b = mod61(a), mod61(b)
		var acc uint64
		for b > 0 {
			if b&1 == 1 {
				acc = mod61(acc + a)
			}
			a = mod61(a << 1)
			b >>= 1
		}
		return acc
	}
	f := func(a, b uint64) bool {
		return mulMod61(mod61(a), mod61(b)) == slowMul(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	s1, s2 := uint64(42), uint64(42)
	for i := 0; i < 100; i++ {
		if SplitMix64(&s1) != SplitMix64(&s2) {
			t.Fatal("same seed must generate same stream")
		}
	}
	s3 := uint64(43)
	if s1 == s3 {
		t.Fatal("states should differ")
	}
}

func TestPoly4Deterministic(t *testing.T) {
	s1, s2 := uint64(7), uint64(7)
	p1, p2 := NewPoly4(&s1), NewPoly4(&s2)
	for x := uint64(0); x < 1000; x++ {
		if p1.Hash(x) != p2.Hash(x) {
			t.Fatalf("same-seed polynomials disagree at %d", x)
		}
	}
}

func TestPoly4RangeBounds(t *testing.T) {
	state := uint64(1)
	p := NewPoly4(&state)
	for _, n := range []int{2, 64, 4096, 65536} {
		for x := uint64(0); x < 10000; x += 37 {
			if got := p.HashRange(x, n); int(got) >= n {
				t.Fatalf("HashRange(%d, %d) = %d out of range", x, n, got)
			}
		}
	}
}

func TestPoly4RangeUniformity(t *testing.T) {
	// Sequential keys (the worst realistic input) should spread close to
	// uniformly over the buckets: chi-square against df=n−1.
	state := uint64(99)
	p := NewPoly4(&state)
	const n, samples = 64, 64000
	var counts [n]int
	for x := uint64(0); x < samples; x++ {
		counts[p.HashRange(x, n)]++
	}
	expected := float64(samples) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 99.9th percentile of chi-square with 63 dof ≈ 106.
	if chi2 > 110 {
		t.Errorf("chi-square %.1f too high for uniform hashing", chi2)
	}
}

func TestPoly4StagesIndependent(t *testing.T) {
	state := uint64(5)
	p1 := NewPoly4(&state)
	p2 := NewPoly4(&state)
	same := 0
	const n = 4096
	for x := uint64(0); x < 1000; x++ {
		if p1.HashRange(x, n) == p2.HashRange(x, n) {
			same++
		}
	}
	// Expected collisions ≈ 1000/4096 < 1; allow generous slack.
	if same > 10 {
		t.Errorf("%d/1000 collisions between independent stages", same)
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 4096, 1 << 30} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 4097} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := 0; i < 32; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(2^%d) = %d", i, got)
		}
	}
}

func TestManglerBijective(t *testing.T) {
	for _, bitsN := range []int{16, 32, 48, 64} {
		state := uint64(bitsN)
		m, err := NewMangler(bitsN, &state)
		if err != nil {
			t.Fatalf("NewMangler(%d): %v", bitsN, err)
		}
		mask := ^uint64(0)
		if bitsN < 64 {
			mask = 1<<uint(bitsN) - 1
		}
		f := func(k uint64) bool {
			k &= mask
			img := m.Mangle(k)
			return img&mask == img && m.Unmangle(img) == k
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("bits=%d: %v", bitsN, err)
		}
	}
}

func TestManglerMixesClusteredKeys(t *testing.T) {
	// Sequential IPs (one subnet) must not stay sequential after mangling:
	// check the images spread over the top byte of the key space.
	state := uint64(11)
	m, err := NewMangler(48, &state)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for k := uint64(0); k < 256; k++ {
		seen[m.Mangle(k)>>40] = true
	}
	if len(seen) < 32 {
		t.Errorf("only %d distinct top bytes after mangling 256 sequential keys", len(seen))
	}
}

func TestManglerRejectsBadWidth(t *testing.T) {
	state := uint64(1)
	if _, err := NewMangler(0, &state); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewMangler(65, &state); err == nil {
		t.Error("width 65 accepted")
	}
}

func TestInvertOdd(t *testing.T) {
	f := func(x uint64) bool {
		x |= 1
		return x*invertOdd(x) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
