package sketch

import "fmt"

// Grid is a stages×buckets array of float64 values with the same geometry
// as a sketch's counter array. Grids carry derived per-bucket signals —
// EWMA forecasts and forecast errors — between the time-series module and
// the sketches, which own the hash functions needed to read them
// (EstimateGrid, INFERENCE).
type Grid [][]float64

// NewGrid allocates a zeroed grid.
func NewGrid(stages, buckets int) Grid {
	g := make(Grid, stages)
	backing := make([]float64, stages*buckets)
	for i := range g {
		g[i] = backing[i*buckets : (i+1)*buckets : (i+1)*buckets]
	}
	return g
}

// Stages returns the number of stages (rows).
func (g Grid) Stages() int { return len(g) }

// Buckets returns the number of buckets per stage, 0 for an empty grid.
func (g Grid) Buckets() int {
	if len(g) == 0 {
		return 0
	}
	return len(g[0])
}

// Clone deep-copies the grid.
func (g Grid) Clone() Grid {
	out := NewGrid(g.Stages(), g.Buckets())
	for i := range g {
		copy(out[i], g[i])
	}
	return out
}

// Zero resets every value in place.
func (g Grid) Zero() {
	for i := range g {
		row := g[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// AddCounts accumulates integer sketch counters into the grid, scaled by c.
func (g Grid) AddCounts(counts [][]int32, c float64) error {
	if len(counts) != len(g) {
		return fmt.Errorf("grid: stage mismatch %d != %d", len(counts), len(g))
	}
	for i := range g {
		if len(counts[i]) != len(g[i]) {
			return fmt.Errorf("grid: bucket mismatch at stage %d: %d != %d", i, len(counts[i]), len(g[i]))
		}
		row, crow := g[i], counts[i]
		for j := range row {
			row[j] += c * float64(crow[j])
		}
	}
	return nil
}

// Sum returns the total of one stage's values.
func (g Grid) Sum(stage int) float64 {
	var s float64
	for _, v := range g[stage] {
		s += v
	}
	return s
}
