// Package sketch implements the k-ary sketch of Krishnamurthy et al.
// (IMC 2003) — the paper's "original sketch" — together with the hashing
// and key-mangling substrate shared by the reversible and two-dimensional
// sketches. A sketch supports the four operations of paper Table 2:
// UPDATE, ESTIMATE, COMBINE (all sketches) and, for reversible sketches,
// INFERENCE (package revsketch).
package sketch

import "math/bits"

// mersenne61 is the Mersenne prime 2^61−1 used as the field for polynomial
// universal hashing. Arithmetic mod 2^61−1 reduces with shifts only.
const mersenne61 = uint64(1)<<61 - 1

// SplitMix64 advances the classic splitmix64 generator and returns the
// next value. It seeds every hash function in the system deterministically
// from a single user seed, so two sketches built with the same seed and
// parameters are COMBINE-compatible by construction.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mod61 reduces x modulo 2^61−1.
func mod61(x uint64) uint64 {
	x = (x >> 61) + (x & mersenne61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	return x
}

// mulMod61 multiplies two residues modulo 2^61−1 using a 128-bit product.
// 2^64 ≡ 8 (mod 2^61−1), so hi·2^64 + lo ≡ 8·hi + lo.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// 8·hi can be up to ~2^64, so reduce the pieces separately before adding.
	return mod61(mod61(hi<<3) + mod61(lo))
}

// Poly4 is a degree-3 polynomial over GF(2^61−1), giving a 4-universal
// hash family: any four distinct keys hash jointly uniformly. 4-universality
// is what the k-ary sketch variance analysis assumes; it is also plenty for
// the per-word tabulation hashes of the reversible sketch.
type Poly4 struct {
	coeff [4]uint64
}

// NewPoly4 draws a random polynomial from the family using the supplied
// splitmix state.
func NewPoly4(state *uint64) Poly4 {
	var p Poly4
	for i := range p.coeff {
		p.coeff[i] = mod61(SplitMix64(state))
	}
	// A zero leading coefficient would degrade the family; nudge it.
	if p.coeff[3] == 0 {
		p.coeff[3] = 1
	}
	return p
}

// Hash evaluates the polynomial at x (reduced into the field first) and
// returns a value in [0, 2^61−1).
func (p Poly4) Hash(x uint64) uint64 {
	x = mod61(x)
	h := p.coeff[3]
	for i := 2; i >= 0; i-- {
		h = mod61(mulMod61(h, x) + p.coeff[i])
	}
	return h
}

// HashRange maps x uniformly into [0, n). n must be a power of two; the
// sketch parameter validation guarantees this, so the method masks rather
// than divides.
func (p Poly4) HashRange(x uint64, n int) uint32 {
	// Use the high bits of the 61-bit hash: the low bits of a polynomial
	// over a Mersenne field are slightly less uniform.
	return uint32((p.Hash(x) >> (61 - uint(bits.Len(uint(n-1))))) & uint64(n-1))
}

// KeyPowers is the per-key hash material every polynomial hash of the
// same key shares: the key's residue and its square and cube in the
// field. HiFIND hashes each packed key through several independently
// seeded Poly4 families (verifier, OS, 2D sketches); the powers depend
// only on the key, so the fused update engine computes them once per
// packet and fans them out, replacing one Horner chain per structure
// per stage.
type KeyPowers struct {
	X, X2, X3 uint64
}

// PowersOf reduces the key into the field and returns its first three
// powers.
func PowersOf(key uint64) KeyPowers {
	x := mod61(key)
	x2 := mulMod61(x, x)
	return KeyPowers{X: x, X2: x2, X3: mulMod61(x2, x)}
}

// HashPow evaluates the polynomial from precomputed key powers. The
// result is bit-identical to Hash(key) for the key the powers came
// from: both compute the same residue of c₃x³+c₂x²+c₁x+c₀ and both
// return it fully reduced into [0, 2^61−1) — each product term is a
// reduced residue < 2^61, so the four-term sum stays below 2^63 and one
// mod61 finishes the reduction. Unlike Horner's rule the three products
// are independent, so the multiplier pipeline overlaps them.
func (p Poly4) HashPow(kp KeyPowers) uint64 {
	return mod61(mulMod61(p.coeff[3], kp.X3) + mulMod61(p.coeff[2], kp.X2) +
		mulMod61(p.coeff[1], kp.X) + p.coeff[0])
}

// HashRangePow is HashRange evaluated from precomputed key powers;
// identical output for the same key.
func (p Poly4) HashRangePow(kp KeyPowers, n int) uint32 {
	return uint32((p.HashPow(kp) >> (61 - uint(bits.Len(uint(n-1))))) & uint64(n-1))
}

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Log2 returns log2(n) for a power of two n.
func Log2(n int) int {
	return bits.TrailingZeros(uint(n))
}
