package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, p Params, seed uint64) *Sketch {
	t.Helper()
	s, err := New(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr bool
	}{
		{name: "paper OS geometry", p: Params{Stages: 6, Buckets: 1 << 14}},
		{name: "minimum", p: Params{Stages: 1, Buckets: 2}},
		{name: "zero stages", p: Params{Stages: 0, Buckets: 16}, wantErr: true},
		{name: "non power of two", p: Params{Stages: 4, Buckets: 100}, wantErr: true},
		{name: "one bucket", p: Params{Stages: 4, Buckets: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestEstimateSingleKey(t *testing.T) {
	s := mustNew(t, Params{Stages: 6, Buckets: 4096}, 1)
	s.Update(42, 100)
	if got := s.Estimate(42); math.Abs(got-100) > 1 {
		t.Errorf("Estimate = %.2f, want ≈100", got)
	}
	// A key that was never updated should estimate near zero.
	if got := s.Estimate(9999); math.Abs(got) > 1 {
		t.Errorf("absent key Estimate = %.2f, want ≈0", got)
	}
}

func TestEstimateHeavyHitterAmongNoise(t *testing.T) {
	s := mustNew(t, Params{Stages: 6, Buckets: 4096}, 2)
	rng := rand.New(rand.NewSource(7))
	// 20k random small flows plus one heavy key.
	for i := 0; i < 20000; i++ {
		s.Update(rng.Uint64(), 1)
	}
	const heavy, weight = uint64(777), int32(5000)
	s.Update(heavy, weight)
	got := s.Estimate(heavy)
	if math.Abs(got-float64(weight)) > float64(weight)/10 {
		t.Errorf("heavy key Estimate = %.1f, want within 10%% of %d", got, weight)
	}
}

func TestEstimateNegativeValues(t *testing.T) {
	// HiFIND records #SYN − #SYN/ACK, which can go negative.
	s := mustNew(t, Params{Stages: 6, Buckets: 4096}, 3)
	s.Update(10, 50)
	s.Update(10, -80)
	if got := s.Estimate(10); math.Abs(got+30) > 1 {
		t.Errorf("Estimate = %.2f, want ≈−30", got)
	}
}

func TestUpdateAccumulatesPerStage(t *testing.T) {
	s := mustNew(t, Params{Stages: 4, Buckets: 64}, 4)
	s.Update(5, 3)
	s.Update(5, 4)
	for stage := 0; stage < 4; stage++ {
		idx := s.BucketIndex(stage, 5)
		if got := s.counts[stage][idx]; got != 7 {
			t.Errorf("stage %d bucket = %d, want 7", stage, got)
		}
	}
	if s.Total() != 7 {
		t.Errorf("Total = %d, want 7", s.Total())
	}
}

func TestCombineIsLinear(t *testing.T) {
	p := Params{Stages: 5, Buckets: 256}
	const seed = 9
	a := mustNew(t, p, seed)
	b := mustNew(t, p, seed)
	ref := mustNew(t, p, seed)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k, v := rng.Uint64(), int32(rng.Intn(10)+1)
		if i%2 == 0 {
			a.Update(k, v)
			ref.Update(k, 2*v) // coefficient 2 below
		} else {
			b.Update(k, v)
			ref.Update(k, 3*v) // coefficient 3 below
		}
	}
	got, err := Combine([]int32{2, 3}, []*Sketch{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.counts {
		for j := range got.counts[i] {
			if got.counts[i][j] != ref.counts[i][j] {
				t.Fatalf("combined bucket [%d][%d] = %d, want %d", i, j, got.counts[i][j], ref.counts[i][j])
			}
		}
	}
	if got.Total() != ref.Total() {
		t.Errorf("combined Total = %d, want %d", got.Total(), ref.Total())
	}
}

func TestCombineAggregationEquivalence(t *testing.T) {
	// The multi-router property (paper §3.1): the combined sketch equals
	// the sketch a single router seeing all traffic would build.
	p := Params{Stages: 6, Buckets: 1024}
	const seed = 10
	routers := []*Sketch{mustNew(t, p, seed), mustNew(t, p, seed), mustNew(t, p, seed)}
	single := mustNew(t, p, seed)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		k, v := rng.Uint64()%1000, int32(1)
		routers[rng.Intn(3)].Update(k, v)
		single.Update(k, v)
	}
	agg, err := Combine([]int32{1, 1, 1}, routers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range agg.counts {
		for j := range agg.counts[i] {
			if agg.counts[i][j] != single.counts[i][j] {
				t.Fatal("aggregated sketch differs from single-router sketch")
			}
		}
	}
}

func TestCombineRejectsIncompatible(t *testing.T) {
	a := mustNew(t, Params{Stages: 4, Buckets: 64}, 1)
	b := mustNew(t, Params{Stages: 4, Buckets: 128}, 1)
	if _, err := Combine([]int32{1, 1}, []*Sketch{a, b}); err == nil {
		t.Error("combine of different geometries accepted")
	}
	c := mustNew(t, Params{Stages: 4, Buckets: 64}, 2)
	if _, err := Combine([]int32{1, 1}, []*Sketch{a, c}); err == nil {
		t.Error("combine of different seeds accepted")
	}
	if _, err := Combine([]int32{1}, []*Sketch{a, a}); err == nil {
		t.Error("coefficient count mismatch accepted")
	}
	if _, err := Combine(nil, nil); err == nil {
		t.Error("empty combine accepted")
	}
}

func TestResetClears(t *testing.T) {
	s := mustNew(t, Params{Stages: 3, Buckets: 32}, 5)
	s.Update(1, 10)
	s.Reset()
	if s.Total() != 0 {
		t.Error("Total nonzero after Reset")
	}
	if got := s.Estimate(1); math.Abs(got) > 0.5 {
		t.Errorf("Estimate after Reset = %.2f, want 0", got)
	}
	// Hashing must survive reset so cross-interval estimates stay aligned.
	s2 := mustNew(t, Params{Stages: 3, Buckets: 32}, 5)
	for stage := 0; stage < 3; stage++ {
		if s.BucketIndex(stage, 99) != s2.BucketIndex(stage, 99) {
			t.Error("hashing changed after Reset")
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := mustNew(t, Params{Stages: 6, Buckets: 512}, 77)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		s.Update(rng.Uint64(), int32(rng.Intn(21)-10))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Compatible(s) || back.Total() != s.Total() {
		t.Fatal("round-tripped sketch metadata differs")
	}
	for i := range s.counts {
		for j := range s.counts[i] {
			if s.counts[i][j] != back.counts[i][j] {
				t.Fatal("round-tripped counters differ")
			}
		}
	}
	// The deserialized sketch must remain combinable with the original.
	if _, err := Combine([]int32{1, -1}, []*Sketch{s, &back}); err != nil {
		t.Errorf("combine with deserialized sketch: %v", err)
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	s := mustNew(t, Params{Stages: 2, Buckets: 8}, 1)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := back.UnmarshalBinary(data[:10]); err == nil {
		t.Error("truncated data accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if err := back.UnmarshalBinary(data[:len(data)-4]); err == nil {
		t.Error("short body accepted")
	}
}

func TestMemoryBytesMatchesPaperBudget(t *testing.T) {
	// Paper §5.1: total recording memory ≈ 13.2 MB. Reconstruct the full
	// HiFIND set here: 2×(6×2^12) + 6×2^16 RS buckets, 3×(6×2^14)
	// verifiers, 6×2^14 OS, 2×(5×2^12×64) 2D buckets, 4 bytes each.
	rs48 := 2 * 6 * (1 << 12)
	rs64 := 6 * (1 << 16)
	verif := 3 * 6 * (1 << 14)
	os := 6 * (1 << 14)
	twoD := 2 * 5 * (1 << 12) * 64
	totalMB := float64((rs48+rs64+verif+os+twoD)*4) / (1 << 20)
	if totalMB < 12 || totalMB > 15 {
		t.Errorf("configured memory %.1f MB, paper says ≈13.2 MB", totalMB)
	}
	s := mustNew(t, Params{Stages: 6, Buckets: 1 << 14}, 1)
	if got := s.MemoryBytes(); got != 6*(1<<14)*4 {
		t.Errorf("MemoryBytes = %d", got)
	}
}

func TestEstimateGridMatchesEstimate(t *testing.T) {
	// Loading the counters into a grid and estimating from the grid must
	// agree with the sketch's own estimator.
	s := mustNew(t, Params{Stages: 6, Buckets: 1024}, 6)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		s.Update(rng.Uint64()%500, 1)
	}
	g := NewGrid(6, 1024)
	if err := g.AddCounts(s.Snapshot(), 1); err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 500; key += 17 {
		a, b := s.Estimate(key), s.EstimateGrid(g, float64(s.Total()), key)
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("EstimateGrid(%d) = %f, Estimate = %f", key, b, a)
		}
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 2}, 1.5},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
		{nil, 0},
	}
	for _, tt := range tests {
		if got := MedianInPlace(append([]float64(nil), tt.in...)); got != tt.want {
			t.Errorf("MedianInPlace(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestEstimateErrorBoundProperty(t *testing.T) {
	// k-ary guarantee (loose form): for random workloads the median
	// estimate error stays within a small multiple of total/K.
	f := func(seed int64) bool {
		s, err := New(Params{Stages: 6, Buckets: 4096}, 11)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 5000; i++ {
			s.Update(rng.Uint64(), 1)
		}
		s.Update(123456, 400)
		est := s.Estimate(123456)
		bound := 8 * float64(s.Total()) / 4096
		return math.Abs(est-400) <= bound+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(2, 4)
	if g.Stages() != 2 || g.Buckets() != 4 {
		t.Fatal("grid geometry wrong")
	}
	g[0][1] = 5
	c := g.Clone()
	c[0][1] = 7
	if g[0][1] != 5 {
		t.Error("Clone aliases original")
	}
	if g.Sum(0) != 5 {
		t.Errorf("Sum = %v", g.Sum(0))
	}
	g.Zero()
	if g.Sum(0) != 0 {
		t.Error("Zero did not clear")
	}
	if err := g.AddCounts([][]int32{{1, 2, 3, 4}, {5, 6, 7, 8}}, 2); err != nil {
		t.Fatal(err)
	}
	if g[1][3] != 16 {
		t.Errorf("AddCounts scaled wrong: %v", g[1][3])
	}
	if err := g.AddCounts([][]int32{{1}}, 1); err == nil {
		t.Error("stage mismatch accepted")
	}
	if err := g.AddCounts([][]int32{{1}, {2}}, 1); err == nil {
		t.Error("bucket mismatch accepted")
	}
	var empty Grid
	if empty.Buckets() != 0 {
		t.Error("empty grid Buckets != 0")
	}
}

func TestOccupancy(t *testing.T) {
	s := mustNew(t, Params{Stages: 2, Buckets: 8}, 9)
	if s.Occupancy() != 0 {
		t.Fatalf("empty sketch occupancy = %v", s.Occupancy())
	}
	s.Update(0xBEEF, 5)
	occ := s.Occupancy()
	// One update touches exactly one bucket per stage: 2 of 16 counters.
	if occ != 2.0/16 {
		t.Fatalf("occupancy = %v, want %v", occ, 2.0/16)
	}
	s.Reset()
	if s.Occupancy() != 0 {
		t.Fatalf("occupancy after reset = %v", s.Occupancy())
	}
	var nilS *Sketch
	if nilS.Occupancy() != 0 {
		t.Fatal("nil sketch occupancy must be 0")
	}
}
