package sketch

import (
	"encoding/binary"
	"fmt"
)

// Params configures a k-ary sketch.
type Params struct {
	// Stages is the number of independent hash tables (H in the paper).
	Stages int
	// Buckets is the number of counters per stage (K); must be a power of
	// two so bucket selection is a mask.
	Buckets int
}

// Validate reports whether the parameters describe a buildable sketch.
func (p Params) Validate() error {
	if p.Stages < 1 {
		return fmt.Errorf("sketch: stages %d < 1", p.Stages)
	}
	if !IsPowerOfTwo(p.Buckets) {
		return fmt.Errorf("sketch: buckets %d is not a power of two", p.Buckets)
	}
	if p.Buckets < 2 {
		return fmt.Errorf("sketch: buckets %d < 2", p.Buckets)
	}
	return nil
}

// Sketch is a k-ary sketch: H stages of K counters, each stage indexed by
// an independent 4-universal hash of the key. Counters are int32 because
// HiFIND records signed values (#SYN − #SYN/ACK); int32 matches the
// paper's 13.2 MB memory budget. A Sketch is not safe for concurrent
// use: Update mutates counters and Estimate reuses a scratch buffer that
// keeps the per-key estimate allocation-free.
type Sketch struct {
	params  Params
	seed    uint64
	hash    []Poly4
	counts  [][]int32
	total   int64     // sum of all update values, for the k-ary estimator
	scratch []float64 // per-stage estimates, reused across Estimate calls
}

// New builds an empty sketch. Sketches built with equal params and seed
// share hash functions and may be combined. Construction allocates by
// design and runs at setup or interval boundaries — even when reached
// from COMBINE, it is off the per-packet path.
//
//hifind:cold
func New(params Params, seed uint64) (*Sketch, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	s := &Sketch{
		params:  params,
		seed:    seed,
		hash:    make([]Poly4, params.Stages),
		counts:  make([][]int32, params.Stages),
		scratch: make([]float64, params.Stages),
	}
	state := seed
	backing := make([]int32, params.Stages*params.Buckets)
	for i := 0; i < params.Stages; i++ {
		s.hash[i] = NewPoly4(&state)
		s.counts[i] = backing[i*params.Buckets : (i+1)*params.Buckets : (i+1)*params.Buckets]
	}
	return s, nil
}

// Params returns the sketch geometry.
func (s *Sketch) Params() Params { return s.params }

// Seed returns the hash seed.
func (s *Sketch) Seed() uint64 { return s.seed }

// Update adds v to the key's counter in every stage (paper Table 2 UPDATE).
func (s *Sketch) Update(key uint64, v int32) {
	for i, h := range s.hash {
		s.counts[i][h.HashRange(key, s.params.Buckets)] += v
	}
	s.total += int64(v)
}

// BucketIndex returns the bucket the key maps to in one stage. Exposed so
// derived structures (EWMA error grids) can be read for a specific key.
func (s *Sketch) BucketIndex(stage int, key uint64) int {
	return int(s.hash[stage].HashRange(key, s.params.Buckets))
}

// Estimate reconstructs the key's value (paper Table 2 ESTIMATE) using the
// mean-corrected per-stage estimate
//
//	v_j = (count_j − total/K) / (1 − 1/K)
//
// and returns the median across stages, the unbiased k-ary estimator.
func (s *Sketch) Estimate(key uint64) float64 {
	k := float64(s.params.Buckets)
	est := s.scratch
	for i, h := range s.hash {
		c := float64(s.counts[i][h.HashRange(key, s.params.Buckets)])
		est[i] = (c - float64(s.total)/k) / (1 - 1/k)
	}
	return MedianInPlace(est)
}

// EstimateGrid applies the same estimator to an external value grid that
// shares this sketch's geometry and hashing — e.g. a forecast-error grid.
// gridTotal must be the sum of one stage of the grid (all stages of a
// well-formed grid have the same total).
func (s *Sketch) EstimateGrid(g Grid, gridTotal float64, key uint64) float64 {
	k := float64(s.params.Buckets)
	est := s.scratch
	for i, h := range s.hash {
		c := g[i][h.HashRange(key, s.params.Buckets)]
		est[i] = (c - gridTotal/k) / (1 - 1/k)
	}
	return MedianInPlace(est)
}

// Snapshot deep-copies the counter array, e.g. for the forecaster.
func (s *Sketch) Snapshot() [][]int32 {
	out := make([][]int32, s.params.Stages)
	backing := make([]int32, s.params.Stages*s.params.Buckets)
	for i := range s.counts {
		row := backing[i*s.params.Buckets : (i+1)*s.params.Buckets : (i+1)*s.params.Buckets]
		copy(row, s.counts[i])
		out[i] = row
	}
	return out
}

// Total returns the sum of all values updated into the sketch.
func (s *Sketch) Total() int64 { return s.total }

// Occupancy returns the fraction of counters holding a nonzero value,
// averaged over all stages. Sampled at interval rotation it is the
// saturation signal the telemetry layer exposes: as occupancy
// approaches 1 the k-ary estimates lose the sparsity their variance
// bound assumes, which is exactly the condition a DoS against the
// monitor itself would induce.
func (s *Sketch) Occupancy() float64 {
	if s == nil {
		return 0
	}
	var nonzero, total int
	for i := range s.counts {
		row := s.counts[i]
		total += len(row)
		for _, v := range row {
			if v != 0 {
				nonzero++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(nonzero) / float64(total)
}

// Reset zeroes the counters for the next measurement interval. The hash
// functions are kept, so estimates remain comparable across intervals.
func (s *Sketch) Reset() {
	for i := range s.counts {
		row := s.counts[i]
		for j := range row {
			row[j] = 0
		}
	}
	s.total = 0
}

// Compatible reports whether two sketches share geometry and hashing and
// can therefore be combined.
func (s *Sketch) Compatible(o *Sketch) bool {
	return s.params == o.params && s.seed == o.seed
}

// Combine computes the linear combination Σ cᵢ·Sᵢ of compatible sketches
// (paper Table 2 COMBINE) into a fresh sketch. This is what lets HiFIND
// aggregate per-router sketches at a central site: by linearity the result
// is the sketch that a single router seeing all traffic would have built.
func Combine(coeffs []int32, sketches []*Sketch) (*Sketch, error) {
	if len(sketches) == 0 {
		return nil, fmt.Errorf("sketch: combine of zero sketches")
	}
	if len(coeffs) != len(sketches) {
		return nil, fmt.Errorf("sketch: %d coefficients for %d sketches", len(coeffs), len(sketches))
	}
	out, err := New(sketches[0].params, sketches[0].seed)
	if err != nil {
		return nil, err
	}
	for n, in := range sketches {
		if !out.Compatible(in) {
			return nil, fmt.Errorf("sketch: operand %d incompatible (params %+v seed %d)", n, in.params, in.seed)
		}
		c := coeffs[n]
		for i := range out.counts {
			dst, src := out.counts[i], in.counts[i]
			for j := range dst {
				dst[j] += c * src[j]
			}
		}
		out.total += int64(c) * in.total
	}
	return out, nil
}

// MemoryBytes returns the counter memory footprint, the number the paper's
// Table 9 compares against per-flow tables.
func (s *Sketch) MemoryBytes() int {
	return s.params.Stages * s.params.Buckets * 4
}

// marshal layout: stages, buckets (uint32 each), seed, total, counters.
const sketchMagic = uint32(0x48694b53) // "HiKS"

// MarshalBinary serializes the sketch so routers can ship it to the
// aggregation site. Counters dominate; the encoding is fixed-width
// little-endian with a magic/version header.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4+4+8+8+4*s.params.Stages*s.params.Buckets)
	buf = binary.LittleEndian.AppendUint32(buf, sketchMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.params.Stages))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.params.Buckets))
	buf = binary.LittleEndian.AppendUint64(buf, s.seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.total))
	for i := range s.counts {
		for _, c := range s.counts[i] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
		}
	}
	return buf, nil
}

// UnmarshalBinary reverses MarshalBinary, rebuilding hash functions from
// the serialized seed.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 28 {
		return fmt.Errorf("sketch: truncated header (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != sketchMagic {
		return fmt.Errorf("sketch: bad magic %#x", binary.LittleEndian.Uint32(data))
	}
	params := Params{
		Stages:  int(binary.LittleEndian.Uint32(data[4:])),
		Buckets: int(binary.LittleEndian.Uint32(data[8:])),
	}
	seed := binary.LittleEndian.Uint64(data[12:])
	total := int64(binary.LittleEndian.Uint64(data[20:]))
	want := 28 + 4*params.Stages*params.Buckets
	if err := params.Validate(); err != nil {
		return fmt.Errorf("sketch: unmarshal: %w", err)
	}
	if len(data) != want {
		return fmt.Errorf("sketch: body length %d, want %d", len(data), want)
	}
	fresh, err := New(params, seed)
	if err != nil {
		return fmt.Errorf("sketch: unmarshal: %w", err)
	}
	off := 28
	for i := range fresh.counts {
		row := fresh.counts[i]
		for j := range row {
			row[j] = int32(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	fresh.total = total
	*s = *fresh
	return nil
}
