package sketch

import "math/bits"

// Plan caches the per-stage bucket indices one key selects in this
// sketch — the complete hash work of an Update, done once and
// replayable by UpdateAt. Plans are the fused update engine's currency:
// the recorder fills one plan per structure per packet from shared
// KeyPowers, then applies the counter writes through the cached
// indices. A Plan is sized for the sketch that created it and is only
// valid against sketches of the same geometry; it holds no counters, so
// reusing one across calls is free and allocation-free.
type Plan struct {
	idx []uint32
}

// NewPlan returns a reusable bucket plan sized for this sketch. The
// single allocation happens here; FillPlan and UpdateAt never allocate.
func (s *Sketch) NewPlan() *Plan {
	return &Plan{idx: make([]uint32, s.params.Stages)}
}

// FillPlan computes the bucket index the key (given by its precomputed
// powers) selects in every stage. The indices are bit-identical to the
// ones Update derives: HashRangePow equals HashRange for the key the
// powers came from.
func (s *Sketch) FillPlan(kp KeyPowers, p *Plan) {
	shift := 61 - uint(bits.Len(uint(s.params.Buckets-1)))
	mask := uint64(s.params.Buckets - 1)
	idx := p.idx
	for i, h := range s.hash {
		idx[i] = uint32((h.HashPow(kp) >> shift) & mask)
	}
}

// UpdateAt adds v to the planned bucket of every stage — UPDATE with
// the hashing already paid for.
func (s *Sketch) UpdateAt(p *Plan, v int32) {
	for i, ix := range p.idx {
		s.counts[i][ix] += v
	}
	s.total += int64(v)
}
