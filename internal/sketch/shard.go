package sketch

// Shard-view API: the key-sharded parallel pipeline (internal/pipeline)
// partitions every sketch's bucket columns across workers and applies
// pre-routed counter deltas directly, bypassing Update/UpdateAt. These
// accessors expose exactly what that applier needs — the live per-stage
// counter rows and a way to stitch the scalar total back in at epoch
// rotation — without giving up the sketch's ownership of its hashing.
//
// The returned slices alias the sketch's backing array: writes through
// them are writes into the sketch. They stay valid across Reset (which
// zeroes in place) but NOT across UnmarshalBinary, which replaces the
// backing; rebuild any held views after unmarshaling.

// StageCells returns stage's live counter row (length Buckets), shared
// with the sketch. Callers own the consistency of concurrent writes:
// the sharded pipeline guarantees disjoint index ranges per writer.
func (s *Sketch) StageCells(stage int) []int32 { return s.counts[stage] }

// AddTotal folds an externally tallied sum of update values into the
// sketch's total — the epoch-rotation stitch for cell-level appliers,
// which bypass UpdateAt's own total accounting. The total feeds the
// mean-corrected ESTIMATE, so a stitched sketch estimates identically
// to one updated sequentially.
func (s *Sketch) AddTotal(d int64) { s.total += d }

// Indices returns the plan's cached per-stage bucket indices, shared
// with the plan. Read-only for callers; FillPlan overwrites it. The
// sharded pipeline reads these to turn one planned update into routed
// per-bucket ops.
func (p *Plan) Indices() []uint32 { return p.idx }
