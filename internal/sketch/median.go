package sketch

// MedianInPlace sorts vals with an insertion sort and returns the
// median, averaging the middle pair for even lengths. The sketch family
// calls it per ESTIMATE with stage-count-sized inputs (≤ ~16), where
// insertion sort beats the sort package's dispatch overhead and — unlike
// sort.Float64s — performs no allocation, keeping the estimate hot path
// alloc-free (enforced by hifindlint's hotpath-alloc rule).
func MedianInPlace(vals []float64) float64 {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	n := len(vals)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}
