package sketch

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestHashPowMatchesHash pins the fused engine's core identity: the
// power-basis polynomial evaluation equals Horner's rule bit-for-bit,
// for every hash function and every key — including keys at and above
// the field modulus, where reduction order could plausibly diverge.
func TestHashPowMatchesHash(t *testing.T) {
	state := uint64(0xfeedface)
	rng := rand.New(rand.NewSource(7))
	corners := []uint64{0, 1, mersenne61 - 1, mersenne61, mersenne61 + 1, ^uint64(0)}
	for f := 0; f < 32; f++ {
		p := NewPoly4(&state)
		keys := append([]uint64{}, corners...)
		for i := 0; i < 256; i++ {
			keys = append(keys, rng.Uint64())
		}
		for _, k := range keys {
			kp := PowersOf(k)
			if got, want := p.HashPow(kp), p.Hash(k); got != want {
				t.Fatalf("fn %d key %#x: HashPow=%d Hash=%d", f, k, got, want)
			}
			for _, n := range []int{2, 64, 1 << 12, 1 << 16} {
				if got, want := p.HashRangePow(kp, n), p.HashRange(k, n); got != want {
					t.Fatalf("fn %d key %#x n=%d: HashRangePow=%d HashRange=%d", f, k, n, got, want)
				}
			}
		}
	}
}

// TestWeightedUpdateEquivalence is the linearity property the O(1)
// NetFlow replay rests on: Update(k, v·c) ≡ c repeated Update(k, v),
// byte-for-byte in serialized state. Quick-check over random keys plus
// exhaustive small corners including c=0 and negative v.
func TestWeightedUpdateEquivalence(t *testing.T) {
	params := Params{Stages: 6, Buckets: 1 << 10}
	rng := rand.New(rand.NewSource(99))
	counts := []int32{0, 1, 2, 3, 17, 100}
	values := []int32{-3, -1, 1, 2, 5}
	for trial := 0; trial < 20; trial++ {
		weighted, err := New(params, 0x51ed)
		if err != nil {
			t.Fatal(err)
		}
		repeated, err := New(params, 0x51ed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			k := rng.Uint64()
			v := values[rng.Intn(len(values))]
			c := counts[rng.Intn(len(counts))]
			weighted.Update(k, v*c)
			for j := int32(0); j < c; j++ {
				repeated.Update(k, v)
			}
		}
		wb, err := weighted.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := repeated.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wb, rb) {
			t.Fatalf("trial %d: weighted and repeated update state diverged", trial)
		}
	}
}

// TestPlanUpdateEquivalence proves the plan path writes exactly the
// buckets Update writes: filling a plan from shared key powers and
// applying UpdateAt leaves serialized state identical to direct Update.
func TestPlanUpdateEquivalence(t *testing.T) {
	params := Params{Stages: 6, Buckets: 1 << 12}
	direct, err := New(params, 0xabcd)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := New(params, 0xabcd)
	if err != nil {
		t.Fatal(err)
	}
	plan := planned.NewPlan()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		k := rng.Uint64()
		v := int32(rng.Intn(9) - 4)
		direct.Update(k, v)
		planned.FillPlan(PowersOf(k), plan)
		planned.UpdateAt(plan, v)
	}
	db, err := direct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := planned.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(db, pb) {
		t.Fatal("planned update state diverged from direct Update")
	}
}
