package sketch

import "fmt"

// Mangler is the "IP mangling" bijection of the reversible-sketch papers
// (Schweller et al., IMC 2004 / Infocom 2006). Modular hashing splits a
// key into words that are hashed independently, which would let highly
// clustered keys (real IP space is heavily clustered) collide in bursts.
// Mangling mixes the whole key through an invertible transform first so
// the words the modular hash sees are effectively uniform.
//
// The original papers use multiplication in GF(2^n); this implementation
// substitutes an odd-multiplier affine transform modulo 2^n:
//
//	mangle(k)   = ((k·A) mod 2^n) ⊕ B
//	unmangle(m) = ((m ⊕ B)·A⁻¹) mod 2^n
//
// Both are mixing bijections, and no HiFIND algorithm depends on which
// bijection is used — only on invertibility (see DESIGN.md §2).
type Mangler struct {
	bits uint
	mask uint64
	mul  uint64 // odd multiplier
	inv  uint64 // multiplicative inverse of mul modulo 2^bits
	xor  uint64
}

// NewMangler builds a mangler for keys of the given width (1..64 bits),
// drawing its constants from the splitmix state.
func NewMangler(keyBits int, state *uint64) (Mangler, error) {
	if keyBits < 1 || keyBits > 64 {
		return Mangler{}, fmt.Errorf("mangler: key width %d out of range [1,64]", keyBits)
	}
	mask := ^uint64(0)
	if keyBits < 64 {
		mask = uint64(1)<<uint(keyBits) - 1
	}
	mul := (SplitMix64(state) | 1) & mask // odd ⇒ invertible mod 2^n
	if mul == 1 && keyBits > 1 {
		mul = 3 // identity multiplier would defeat the mixing purpose
	}
	return Mangler{
		bits: uint(keyBits),
		mask: mask,
		mul:  mul,
		inv:  invertOdd(mul) & mask,
		xor:  SplitMix64(state) & mask,
	}, nil
}

// Mangle maps a key to its mixed image. The key must fit in the mangler's
// declared width; higher bits are ignored.
func (m Mangler) Mangle(key uint64) uint64 {
	return (key * m.mul & m.mask) ^ m.xor
}

// Unmangle inverts Mangle.
func (m Mangler) Unmangle(mangled uint64) uint64 {
	return (mangled ^ m.xor) * m.inv & m.mask
}

// Bits returns the key width the mangler operates on.
func (m Mangler) Bits() int { return int(m.bits) }

// invertOdd computes the multiplicative inverse of an odd x modulo 2^64
// by Newton iteration; masking the result gives the inverse modulo any
// smaller power of two.
func invertOdd(x uint64) uint64 {
	inv := x // correct to 3 bits
	for i := 0; i < 5; i++ {
		inv *= 2 - x*inv // doubles the number of correct bits
	}
	return inv
}
