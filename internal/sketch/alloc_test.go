package sketch

import "testing"

// The per-packet operations must not allocate: at OC-192 rates every
// Update allocation is a GC assist on the capture path, and Estimate runs
// once per candidate key during change detection. The hotpath-alloc lint
// rule guards the source; this test guards the runtime behavior (escape
// analysis regressions the AST rule cannot see).

func TestUpdateAllocs(t *testing.T) {
	s, err := New(Params{Stages: 5, Buckets: 1 << 12}, 42)
	if err != nil {
		t.Fatal(err)
	}
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		s.Update(key, 1)
		key++
	})
	if allocs != 0 {
		t.Errorf("Update allocates %v times per call, want 0", allocs)
	}
}

func TestEstimateAllocs(t *testing.T) {
	s, err := New(Params{Stages: 5, Buckets: 1 << 12}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		s.Update(k, int32(k%7)+1)
	}
	var key uint64
	allocs := testing.AllocsPerRun(1000, func() {
		_ = s.Estimate(key)
		key++
	})
	if allocs != 0 {
		t.Errorf("Estimate allocates %v times per call, want 0", allocs)
	}
}
