// Package evalx is the evaluation harness: it matches detector alerts
// against trace ground truth, computes the per-phase counts of paper
// Table 4, the cross-detector overlaps of Tables 5–6, the scan rankings of
// Tables 7–8 and the Figure 4 histogram, and formats the results as
// paper-style text tables.
package evalx

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/trace"
)

// Phase selects which alert list of an IntervalResult to analyze.
type Phase int

// Phases of the detection pipeline (paper Table 4 columns).
const (
	PhaseRaw Phase = iota + 1
	Phase2
	PhaseFinal
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseRaw:
		return "raw"
	case Phase2:
		return "after-2D"
	case PhaseFinal:
		return "final"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// alertsOf extracts the phase's alert list.
func alertsOf(r core.IntervalResult, p Phase) []core.Alert {
	switch p {
	case PhaseRaw:
		return r.Raw
	case Phase2:
		return r.Phase2
	default:
		return r.Final
	}
}

// Dedup collects the distinct alerts of one phase across a whole run,
// keeping the highest-estimate instance of each (repeated alerts for the
// same culprit are removed, as in paper §5.3.1).
func Dedup(results []core.IntervalResult, p Phase) map[core.AlertKey]core.Alert {
	out := make(map[core.AlertKey]core.Alert)
	for _, r := range results {
		for _, a := range alertsOf(r, p) {
			if prev, ok := out[a.Key()]; !ok || a.Estimate > prev.Estimate {
				out[a.Key()] = a
			}
		}
	}
	return out
}

// TypeCounts is one Table 4 cell group: distinct alerts by type.
type TypeCounts struct {
	Flood, HScan, VScan int
}

// CountTypes tallies a deduped alert set.
func CountTypes(alerts map[core.AlertKey]core.Alert) TypeCounts {
	var c TypeCounts
	for k := range alerts {
		switch k.Type {
		case core.AlertSYNFlood:
			c.Flood++
		case core.AlertHScan:
			c.HScan++
		case core.AlertVScan:
			c.VScan++
		}
	}
	return c
}

// PhaseTable computes the three Table 4 rows for a run.
func PhaseTable(results []core.IntervalResult) (raw, p2, final TypeCounts) {
	return CountTypes(Dedup(results, PhaseRaw)),
		CountTypes(Dedup(results, Phase2)),
		CountTypes(Dedup(results, PhaseFinal))
}

// Matcher classifies alerts against trace ground truth.
type Matcher struct {
	attacks []trace.Attack
}

// NewMatcher wraps a ground-truth attack list.
func NewMatcher(attacks []trace.Attack) *Matcher {
	cp := make([]trace.Attack, len(attacks))
	copy(cp, attacks)
	return &Matcher{attacks: cp}
}

// Match returns the ground-truth event an alert correctly identifies, if
// any. The alert's *type* must agree with the event: a flood alert only
// matches a SYN flood, a horizontal-scan alert only a horizontal scan, and
// so on — misclassifications count as false positives, which is exactly
// what the paper's phase analysis measures.
func (m *Matcher) Match(a core.Alert) (trace.Attack, bool) {
	for _, atk := range m.attacks {
		if m.matches(a, atk) {
			return atk, true
		}
	}
	return trace.Attack{}, false
}

func (m *Matcher) matches(a core.Alert, atk trace.Attack) bool {
	switch a.Type {
	case core.AlertSYNFlood:
		if atk.Type != trace.SYNFlood {
			return false
		}
		targets := atk.Targets
		if targets < 1 {
			targets = 1
		}
		if a.DIP < atk.Victim || a.DIP >= atk.Victim+netmodel.IPv4(targets) {
			return false
		}
		for _, p := range atk.Ports {
			if a.Port == p {
				return true
			}
		}
		return false
	case core.AlertHScan:
		if atk.Type != trace.HorizontalScan && atk.Type != trace.BlockScan {
			return false
		}
		if len(atk.Attackers) == 0 || a.SIP != atk.Attackers[0] {
			return false
		}
		for _, p := range atk.Ports {
			if a.Port == p {
				return true
			}
		}
		return false
	case core.AlertVScan:
		if atk.Type != trace.VerticalScan && atk.Type != trace.BlockScan {
			return false
		}
		return len(atk.Attackers) > 0 && a.SIP == atk.Attackers[0] && a.DIP == atk.Victim
	case core.AlertBlockScan:
		return atk.Type == trace.BlockScan &&
			len(atk.Attackers) > 0 && a.SIP == atk.Attackers[0]
	case core.AlertBurstFlood:
		if atk.Type != trace.BurstPulse {
			return false
		}
		targets := atk.Targets
		if targets < 1 {
			targets = 1
		}
		if a.DIP < atk.Victim || a.DIP >= atk.Victim+netmodel.IPv4(targets) {
			return false
		}
		for _, p := range atk.Ports {
			if a.Port == p {
				return true
			}
		}
		return false
	case core.AlertPersistScan:
		if atk.Type != trace.StealthScan {
			return false
		}
		if len(atk.Attackers) == 0 || a.SIP != atk.Attackers[0] {
			return false
		}
		for _, p := range atk.Ports {
			if a.Port == p {
				return true
			}
		}
		return false
	case core.AlertReflection:
		if atk.Type != trace.Reflection {
			return false
		}
		if a.DIP != atk.Victim {
			return false
		}
		for _, p := range atk.Ports {
			if a.Port == p {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// truthTypes lists the ground-truth attack types an alert type is allowed
// to claim — the recall denominator of ScoreType.
func truthTypes(typ core.AlertType) []trace.AttackType {
	switch typ {
	case core.AlertSYNFlood:
		return []trace.AttackType{trace.SYNFlood}
	case core.AlertHScan:
		return []trace.AttackType{trace.HorizontalScan, trace.BlockScan}
	case core.AlertVScan:
		return []trace.AttackType{trace.VerticalScan, trace.BlockScan}
	case core.AlertBlockScan:
		return []trace.AttackType{trace.BlockScan}
	case core.AlertBurstFlood:
		return []trace.AttackType{trace.BurstPulse}
	case core.AlertPersistScan:
		return []trace.AttackType{trace.StealthScan}
	case core.AlertReflection:
		return []trace.AttackType{trace.Reflection}
	default:
		return nil
	}
}

// Outcome summarizes accuracy of one deduped alert set against the truth.
type Outcome struct {
	TruePositives  int
	FalsePositives int
	// MissedAttacks lists true attacks with no matching alert.
	MissedAttacks []trace.Attack
}

// Evaluate scores a deduped alert set.
func (m *Matcher) Evaluate(alerts map[core.AlertKey]core.Alert) Outcome {
	var out Outcome
	matched := make(map[int]bool)
	for _, a := range alerts {
		hit := false
		for i, atk := range m.attacks {
			if m.matches(a, atk) {
				matched[i] = true
				hit = true
			}
		}
		if hit {
			out.TruePositives++
		} else {
			out.FalsePositives++
		}
	}
	for i, atk := range m.attacks {
		if atk.Type.IsTrueAttack() && !matched[i] {
			out.MissedAttacks = append(out.MissedAttacks, atk)
		}
	}
	return out
}

// Score holds one detector's precision/recall against ground truth:
// alerts of one type scored only against the attack types that detector
// is supposed to find.
type Score struct {
	Type           core.AlertType
	TruePositives  int
	FalsePositives int
	// Attacks counts ground-truth events of the detector's target types;
	// Detected counts those claimed by at least one matching alert.
	Attacks  int
	Detected int
}

// Precision is TP/(TP+FP). With no alerts at all there are no false
// claims, so an idle detector scores a vacuous 1.
func (s Score) Precision() float64 {
	if s.TruePositives+s.FalsePositives == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(s.TruePositives+s.FalsePositives)
}

// Recall is Detected/Attacks, vacuously 1 when the trace carries no
// attacks of the detector's target types.
func (s Score) Recall() float64 {
	if s.Attacks == 0 {
		return 1
	}
	return float64(s.Detected) / float64(s.Attacks)
}

// ScoreType computes one detector's precision/recall: only alerts of typ
// are scored, and only attacks of typ's target types count toward recall.
func (m *Matcher) ScoreType(alerts map[core.AlertKey]core.Alert, typ core.AlertType) Score {
	s := Score{Type: typ}
	matched := make(map[int]bool)
	for _, a := range alerts {
		if a.Type != typ {
			continue
		}
		hit := false
		for i, atk := range m.attacks {
			if m.matches(a, atk) {
				matched[i] = true
				hit = true
			}
		}
		if hit {
			s.TruePositives++
		} else {
			s.FalsePositives++
		}
	}
	want := truthTypes(typ)
	for i, atk := range m.attacks {
		target := false
		for _, t := range want {
			if atk.Type == t {
				target = true
				break
			}
		}
		if !target {
			continue
		}
		s.Attacks++
		if matched[i] {
			s.Detected++
		}
	}
	return s
}

// FormatScores renders per-detector Score rows as a text table.
func FormatScores(scores []Score) string {
	rows := make([][]string, 0, len(scores))
	for _, s := range scores {
		rows = append(rows, []string{
			s.Type.String(),
			fmt.Sprintf("%d", s.TruePositives),
			fmt.Sprintf("%d", s.FalsePositives),
			fmt.Sprintf("%d/%d", s.Detected, s.Attacks),
			fmt.Sprintf("%.2f", s.Precision()),
			fmt.Sprintf("%.2f", s.Recall()),
		})
	}
	return FormatTable([]string{"detector", "TP", "FP", "attacks", "precision", "recall"}, rows)
}

// ScannerIPs extracts the distinct horizontal-scan sources of a deduped
// alert set (HiFIND's side of Table 5, "aggregated by source IP").
func ScannerIPs(alerts map[core.AlertKey]core.Alert) []netmodel.IPv4 {
	set := make(map[netmodel.IPv4]bool)
	for k := range alerts {
		if k.Type == core.AlertHScan {
			set[k.SIP] = true
		}
	}
	out := make([]netmodel.IPv4, 0, len(set))
	for ip := range set {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OverlapIPs counts addresses present in both sorted-or-not lists.
func OverlapIPs(a, b []netmodel.IPv4) int {
	set := make(map[netmodel.IPv4]bool, len(a))
	for _, ip := range a {
		set[ip] = true
	}
	n := 0
	for _, ip := range b {
		if set[ip] {
			n++
		}
	}
	return n
}

// FloodIntervals lists the intervals carrying at least one final flooding
// alert (HiFIND's side of Table 6).
func FloodIntervals(results []core.IntervalResult) []int {
	out := make([]int, 0, 16)
	for _, r := range results {
		for _, a := range r.Final {
			if a.Type == core.AlertSYNFlood {
				out = append(out, r.Interval)
				break
			}
		}
	}
	return out
}

// OverlapInts counts values present in both int lists.
func OverlapInts(a, b []int) int {
	set := make(map[int]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	n := 0
	for _, v := range b {
		if set[v] {
			n++
		}
	}
	return n
}

// RankedScan is one row of the Tables 7–8 report.
type RankedScan struct {
	SIP    netmodel.IPv4
	Port   uint16
	Fanout int
	Change float64
	Cause  string
}

// RankHScans orders final horizontal-scan alerts by change difference
// (largest first) and joins each with its ground-truth cause.
func RankHScans(alerts map[core.AlertKey]core.Alert, m *Matcher) []RankedScan {
	out := make([]RankedScan, 0, len(alerts))
	for _, a := range alerts {
		if a.Type != core.AlertHScan {
			continue
		}
		row := RankedScan{SIP: a.SIP, Port: a.Port, Fanout: a.FanoutEstimate, Change: a.Estimate}
		if atk, ok := m.Match(a); ok {
			row.Cause = atk.Cause
			if atk.Targets > row.Fanout {
				// The 2D estimate saturates at its Ky buckets; report the
				// sweep size from truth when known, as the paper's tables
				// report observed #DIP.
				row.Fanout = atk.Targets
			}
		} else {
			row.Cause = "unknown (no ground-truth match)"
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Change > out[j].Change {
			return true
		}
		if out[i].Change < out[j].Change {
			return false
		}
		return out[i].SIP < out[j].SIP
	})
	return out
}

// Histogram is a simple integer histogram with fixed-width bins.
type Histogram struct {
	BinWidth int
	Counts   map[int]int // bin start → count
}

// Add places a value.
func (h *Histogram) Add(v int) {
	if h.Counts == nil {
		h.Counts = make(map[int]int)
	}
	h.Counts[(v/h.BinWidth)*h.BinWidth]++
}

// Bins returns the sorted bin starts.
func (h *Histogram) Bins() []int {
	out := make([]int, 0, len(h.Counts))
	for b := range h.Counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// UniquePortHistogram reproduces Figure 4's statistic from a trace: for
// every {SIP,DIP} pair with more than minUnresponded un-answered SYNs in
// some interval, histogram the number of distinct destination ports the
// pair touched in that interval. Floods pile into the first bin; vertical
// scans form the second mode.
func UniquePortHistogram(gen *trace.Generator, minUnresponded, binWidth int) (*Histogram, error) {
	h := &Histogram{BinWidth: binWidth}
	type pairStat struct {
		unresp int
		ports  map[uint16]bool
	}
	for i := 0; i < gen.Intervals(); i++ {
		pkts, err := gen.GenerateInterval(i)
		if err != nil {
			return nil, err
		}
		pairs := make(map[uint64]*pairStat)
		for _, p := range pkts {
			switch {
			case p.Dir == netmodel.Inbound && p.Flags.IsSYN():
				k := netmodel.PackSIPDIP(p.SrcIP, p.DstIP)
				st := pairs[k]
				if st == nil {
					st = &pairStat{ports: make(map[uint16]bool)}
					pairs[k] = st
				}
				st.unresp++
				st.ports[p.DstPort] = true
			case p.Dir == netmodel.Outbound && p.Flags.IsSYNACK():
				k := netmodel.PackSIPDIP(p.DstIP, p.SrcIP)
				if st := pairs[k]; st != nil {
					st.unresp--
				}
			}
		}
		for _, st := range pairs {
			if st.unresp > minUnresponded {
				h.Add(len(st.ports))
			}
		}
	}
	return h, nil
}

// FormatTable renders a fixed-width text table.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// LatencyReport holds time-to-detection for one ground-truth attack.
type LatencyReport struct {
	Attack trace.Attack
	// DetectedAt is the first interval with a matching final alert, or -1.
	DetectedAt int
	// Latency is DetectedAt − StartInterval (in intervals), -1 if missed.
	Latency int
}

// DetectionLatencies computes, for every true attack, how many intervals
// passed between its onset and its first correctly-typed final alert —
// the paper's central motivation is catching outbreaks "in their early
// phases" (§1), so the lag matters as much as the hit rate.
func DetectionLatencies(results []core.IntervalResult, m *Matcher, attacks []trace.Attack) []LatencyReport {
	out := make([]LatencyReport, 0, len(attacks))
	for _, atk := range attacks {
		if !atk.Type.IsTrueAttack() {
			continue
		}
		rep := LatencyReport{Attack: atk, DetectedAt: -1, Latency: -1}
		for _, r := range results {
			found := false
			for _, a := range r.Final {
				if target, ok := m.Match(a); ok && sameAttack(target, atk) {
					found = true
					break
				}
			}
			if found {
				rep.DetectedAt = r.Interval
				rep.Latency = r.Interval - atk.StartInterval
				break
			}
		}
		out = append(out, rep)
	}
	return out
}

// sameAttack compares ground-truth records by identity fields.
func sameAttack(a, b trace.Attack) bool {
	if a.Type != b.Type || a.Victim != b.Victim || a.StartInterval != b.StartInterval {
		return false
	}
	if len(a.Attackers) != len(b.Attackers) {
		return false
	}
	for i := range a.Attackers {
		if a.Attackers[i] != b.Attackers[i] {
			return false
		}
	}
	return true
}
