package evalx

import (
	"strings"
	"testing"
	"time"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/trace"
)

func mkAlert(t core.AlertType, sip, dip netmodel.IPv4, port uint16, est float64, interval int) core.Alert {
	return core.Alert{Type: t, SIP: sip, DIP: dip, Port: port, Estimate: est, Interval: interval}
}

func TestDedupKeepsHighestEstimate(t *testing.T) {
	a1 := mkAlert(core.AlertHScan, 7, 0, 445, 100, 1)
	a2 := mkAlert(core.AlertHScan, 7, 0, 445, 250, 2)
	a3 := mkAlert(core.AlertHScan, 8, 0, 445, 50, 2)
	results := []core.IntervalResult{
		{Interval: 1, Raw: []core.Alert{a1}},
		{Interval: 2, Raw: []core.Alert{a2, a3}},
	}
	got := Dedup(results, PhaseRaw)
	if len(got) != 2 {
		t.Fatalf("dedup kept %d alerts, want 2", len(got))
	}
	if got[a1.Key()].Estimate != 250 {
		t.Error("dedup did not keep the highest estimate")
	}
}

func TestPhaseSelectors(t *testing.T) {
	r := core.IntervalResult{
		Raw:    []core.Alert{mkAlert(core.AlertVScan, 1, 2, 0, 10, 0)},
		Phase2: []core.Alert{},
		Final:  []core.Alert{mkAlert(core.AlertSYNFlood, 0, 3, 80, 99, 0)},
	}
	results := []core.IntervalResult{r}
	if len(Dedup(results, PhaseRaw)) != 1 || len(Dedup(results, Phase2)) != 0 || len(Dedup(results, PhaseFinal)) != 1 {
		t.Error("phase selection wrong")
	}
	for _, p := range []Phase{PhaseRaw, Phase2, PhaseFinal} {
		if p.String() == "" {
			t.Error("empty phase name")
		}
	}
}

func TestCountTypes(t *testing.T) {
	alerts := map[core.AlertKey]core.Alert{}
	add := func(a core.Alert) { alerts[a.Key()] = a }
	add(mkAlert(core.AlertSYNFlood, 0, 1, 80, 1, 0))
	add(mkAlert(core.AlertSYNFlood, 0, 2, 80, 1, 0))
	add(mkAlert(core.AlertHScan, 3, 0, 22, 1, 0))
	add(mkAlert(core.AlertVScan, 4, 5, 0, 1, 0))
	c := CountTypes(alerts)
	if c.Flood != 2 || c.HScan != 1 || c.VScan != 1 {
		t.Errorf("CountTypes = %+v", c)
	}
}

func testAttacks() []trace.Attack {
	return []trace.Attack{
		{Type: trace.SYNFlood, Victim: 100, Ports: []uint16{80}, Rate: 1, Cause: "flood"},
		{Type: trace.SYNFlood, Victim: 200, Ports: []uint16{443}, Targets: 3, Rate: 1,
			Attackers: []netmodel.IPv4{55}, Cause: "cluster flood"},
		{Type: trace.HorizontalScan, Attackers: []netmodel.IPv4{7}, Victim: 0,
			Ports: []uint16{1433}, Targets: 1000, Rate: 1, Cause: "SQLSnake"},
		{Type: trace.VerticalScan, Attackers: []netmodel.IPv4{9}, Victim: 300,
			Ports: []uint16{1, 2, 3}, Rate: 1, Cause: "survey"},
		{Type: trace.Misconfig, Victim: 400, Ports: []uint16{80}, Rate: 1, Cause: "stale"},
	}
}

func TestMatcherTypesMustAgree(t *testing.T) {
	m := NewMatcher(testAttacks())
	tests := []struct {
		name  string
		alert core.Alert
		want  bool
	}{
		{"flood on victim", mkAlert(core.AlertSYNFlood, 0, 100, 80, 1, 0), true},
		{"flood wrong port", mkAlert(core.AlertSYNFlood, 0, 100, 22, 1, 0), false},
		{"flood on cluster member", mkAlert(core.AlertSYNFlood, 0, 201, 443, 1, 0), true},
		{"flood past cluster", mkAlert(core.AlertSYNFlood, 0, 203, 443, 1, 0), false},
		{"flood on misconfig dark host is FP", mkAlert(core.AlertSYNFlood, 0, 400, 80, 1, 0), false},
		{"hscan right source+port", mkAlert(core.AlertHScan, 7, 0, 1433, 1, 0), true},
		{"hscan wrong source", mkAlert(core.AlertHScan, 8, 0, 1433, 1, 0), false},
		{"vscan right pair", mkAlert(core.AlertVScan, 9, 300, 0, 1, 0), true},
		{"vscan wrong victim", mkAlert(core.AlertVScan, 9, 301, 0, 1, 0), false},
		{"vscan alert on flood is FP", mkAlert(core.AlertVScan, 55, 200, 0, 1, 0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, got := m.Match(tt.alert); got != tt.want {
				t.Errorf("Match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEvaluateOutcome(t *testing.T) {
	m := NewMatcher(testAttacks())
	alerts := map[core.AlertKey]core.Alert{}
	add := func(a core.Alert) { alerts[a.Key()] = a }
	add(mkAlert(core.AlertSYNFlood, 0, 100, 80, 1, 0)) // TP
	add(mkAlert(core.AlertHScan, 7, 0, 1433, 1, 0))    // TP
	add(mkAlert(core.AlertSYNFlood, 0, 400, 80, 1, 0)) // FP (misconfig)
	out := m.Evaluate(alerts)
	if out.TruePositives != 2 || out.FalsePositives != 1 {
		t.Errorf("Evaluate = %+v", out)
	}
	// Missed: the cluster flood and the vscan (both true attacks).
	if len(out.MissedAttacks) != 2 {
		t.Errorf("missed %d attacks, want 2", len(out.MissedAttacks))
	}
}

func TestScannerIPsAndOverlap(t *testing.T) {
	alerts := map[core.AlertKey]core.Alert{}
	add := func(a core.Alert) { alerts[a.Key()] = a }
	add(mkAlert(core.AlertHScan, 5, 0, 22, 1, 0))
	add(mkAlert(core.AlertHScan, 5, 0, 80, 1, 0)) // same source, second port
	add(mkAlert(core.AlertHScan, 6, 0, 22, 1, 0))
	add(mkAlert(core.AlertVScan, 7, 8, 0, 1, 0))
	ips := ScannerIPs(alerts)
	if len(ips) != 2 {
		t.Fatalf("ScannerIPs = %v", ips)
	}
	if OverlapIPs(ips, []netmodel.IPv4{5, 9}) != 1 {
		t.Error("OverlapIPs wrong")
	}
	if OverlapIPs(nil, ips) != 0 {
		t.Error("empty overlap wrong")
	}
}

func TestFloodIntervalsAndOverlap(t *testing.T) {
	results := []core.IntervalResult{
		{Interval: 0},
		{Interval: 1, Final: []core.Alert{mkAlert(core.AlertSYNFlood, 0, 1, 80, 1, 1)}},
		{Interval: 2, Final: []core.Alert{mkAlert(core.AlertHScan, 2, 0, 22, 1, 2)}},
		{Interval: 3, Final: []core.Alert{
			mkAlert(core.AlertSYNFlood, 0, 1, 80, 1, 3),
			mkAlert(core.AlertSYNFlood, 0, 2, 80, 1, 3),
		}},
	}
	got := FloodIntervals(results)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("FloodIntervals = %v", got)
	}
	if OverlapInts(got, []int{3, 4}) != 1 {
		t.Error("OverlapInts wrong")
	}
}

func TestRankHScans(t *testing.T) {
	m := NewMatcher(testAttacks())
	alerts := map[core.AlertKey]core.Alert{}
	a := mkAlert(core.AlertHScan, 7, 0, 1433, 500, 0)
	a.FanoutEstimate = 60
	b := mkAlert(core.AlertHScan, 99, 0, 4444, 900, 0)
	b.FanoutEstimate = 10
	alerts[a.Key()] = a
	alerts[b.Key()] = b
	rows := RankHScans(alerts, m)
	if len(rows) != 2 {
		t.Fatalf("RankHScans = %v", rows)
	}
	if rows[0].SIP != 99 || rows[1].SIP != 7 {
		t.Error("not sorted by change difference")
	}
	if rows[1].Cause != "SQLSnake" {
		t.Errorf("cause join failed: %q", rows[1].Cause)
	}
	if rows[1].Fanout != 1000 {
		t.Errorf("fanout should prefer ground-truth sweep size: %d", rows[1].Fanout)
	}
	if !strings.Contains(rows[0].Cause, "unknown") {
		t.Errorf("unmatched scan cause: %q", rows[0].Cause)
	}
}

func TestHistogram(t *testing.T) {
	h := &Histogram{BinWidth: 10}
	for _, v := range []int{1, 2, 3, 15, 250, 255} {
		h.Add(v)
	}
	if h.Counts[0] != 3 || h.Counts[10] != 1 || h.Counts[250] != 2 {
		t.Errorf("histogram = %v", h.Counts)
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0] != 0 || bins[2] != 250 {
		t.Errorf("bins = %v", bins)
	}
}

func TestUniquePortHistogramBimodal(t *testing.T) {
	// A flood (1 port) and a vertical scan (300 ports) must land in
	// well-separated bins — the Figure 4 claim.
	cfg := trace.Config{
		Seed:            3,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       3,
		InternalPrefix:  netmodel.MustParseIPv4("129.105.0.0"),
		Servers:         10,
		BackgroundFlows: 300,
		FailRate:        0.03,
	}
	ports := make([]uint16, 300)
	for i := range ports {
		ports[i] = uint16(1 + i)
	}
	cfg.Attacks = []trace.Attack{
		{Type: trace.SYNFlood, Attackers: []netmodel.IPv4{netmodel.MustParseIPv4("198.51.100.1")},
			Victim: netmodel.MustParseIPv4("129.105.140.1"), Ports: []uint16{80},
			StartInterval: 0, EndInterval: 2, Rate: 300, ResponseRate: 0.05, Cause: "flood"},
		{Type: trace.VerticalScan, Attackers: []netmodel.IPv4{netmodel.MustParseIPv4("198.51.100.2")},
			Victim: netmodel.MustParseIPv4("129.105.140.2"), Ports: ports,
			StartInterval: 0, EndInterval: 2, Rate: 300, ResponseRate: 0.02, Cause: "vscan"},
	}
	g, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := UniquePortHistogram(g, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] == 0 {
		t.Error("flood mode (bin 0) empty")
	}
	highMode := 0
	for bin, n := range h.Counts {
		if bin >= 100 {
			highMode += n
		}
	}
	if highMode == 0 {
		t.Errorf("scan mode empty: %v", h.Counts)
	}
	midMode := 0
	for bin, n := range h.Counts {
		if bin >= 20 && bin < 100 {
			midMode += n
		}
	}
	if midMode != 0 {
		t.Errorf("distribution not bimodal: %d pairs in the valley (%v)", midMode, h.Counts)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bbbb"}, [][]string{{"xxxxx", "y"}, {"1", "2"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "bbbb") || !strings.Contains(lines[2], "xxxxx") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestDetectionLatencies(t *testing.T) {
	attacks := []trace.Attack{
		{Type: trace.SYNFlood, Victim: 100, Ports: []uint16{80}, Rate: 1,
			StartInterval: 3, EndInterval: 8, Cause: "flood"},
		{Type: trace.HorizontalScan, Attackers: []netmodel.IPv4{7}, Victim: 0,
			Ports: []uint16{22}, Targets: 100, Rate: 1,
			StartInterval: 5, EndInterval: 9, Cause: "scan"},
		{Type: trace.Misconfig, Victim: 400, Ports: []uint16{80}, Rate: 1,
			StartInterval: 0, EndInterval: 9, Cause: "benign"},
	}
	m := NewMatcher(attacks)
	results := []core.IntervalResult{
		{Interval: 4},
		{Interval: 5, Final: []core.Alert{mkAlert(core.AlertSYNFlood, 0, 100, 80, 10, 5)}},
		{Interval: 6, Final: []core.Alert{
			mkAlert(core.AlertSYNFlood, 0, 100, 80, 10, 6),
			mkAlert(core.AlertHScan, 7, 0, 22, 10, 6),
		}},
	}
	reports := DetectionLatencies(results, m, attacks)
	// Benign anomalies are excluded; two true attacks reported.
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	if reports[0].DetectedAt != 5 || reports[0].Latency != 2 {
		t.Errorf("flood latency = %+v", reports[0])
	}
	if reports[1].DetectedAt != 6 || reports[1].Latency != 1 {
		t.Errorf("scan latency = %+v", reports[1])
	}
	// An attack never alerted reports -1.
	missedAttacks := append(attacks, trace.Attack{
		Type: trace.VerticalScan, Attackers: []netmodel.IPv4{9}, Victim: 300,
		Ports: []uint16{1}, Rate: 1, StartInterval: 0, EndInterval: 2, Cause: "missed",
	})
	reports = DetectionLatencies(results, NewMatcher(missedAttacks), missedAttacks)
	last := reports[len(reports)-1]
	if last.DetectedAt != -1 || last.Latency != -1 {
		t.Errorf("missed attack report = %+v", last)
	}
}
