// Package mitigate turns HiFIND alerts into enforceable filter rules —
// the step the paper motivates throughout ("use the key characteristics
// of the culprit flows revealed by the reversible sketches to mitigate
// the attacks", §3.1) but leaves to the network operator. The engine maps
// each alert type to the narrowest rule its keys justify:
//
//	horizontal/block scan → drop SYNs from the scanner
//	vertical scan         → drop SYNs from the scanner to the victim
//	non-spoofed flood     → drop SYNs from the attacker to the victim service
//	spoofed flood         → rate-limit SYNs to the victim service
//	                        (sources are forged, so only the victim key
//	                        is actionable — a SYN-proxy stand-in)
//
// Rules expire after a configurable number of intervals unless the alert
// recurs, so mitigation follows the attack rather than accreting state —
// the same bounded-memory discipline as the detector.
package mitigate

import (
	"fmt"
	"sort"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
)

// Action is what a rule does to matching SYNs.
type Action int

// Actions.
const (
	// BlockSource drops connection-opening SYNs from a source address.
	BlockSource Action = iota + 1
	// BlockPair drops SYNs from one source to one destination.
	BlockPair
	// RateLimitService admits at most Budget SYNs per interval toward a
	// {DIP,Dport} service and drops the excess.
	RateLimitService
)

// String names the action.
func (a Action) String() string {
	switch a {
	case BlockSource:
		return "block-source"
	case BlockPair:
		return "block-pair"
	case RateLimitService:
		return "rate-limit-service"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Rule is one installed mitigation.
type Rule struct {
	Action Action
	SIP    netmodel.IPv4 // BlockSource, BlockPair
	DIP    netmodel.IPv4 // BlockPair, RateLimitService
	Port   uint16        // RateLimitService, BlockPair (0 = any)
	// Budget is the per-interval SYN allowance for RateLimitService.
	Budget int
	// TTL is the number of EndInterval ticks the rule survives without
	// being refreshed by a recurring alert.
	TTL int

	used int // budget consumed this interval
	hits int64
}

// key identifies a rule for refresh/dedup.
type ruleKey struct {
	action Action
	sip    netmodel.IPv4
	dip    netmodel.IPv4
	port   uint16
}

// Config tunes the engine.
type Config struct {
	// TTLIntervals is how long a rule survives without refresh (default 5).
	TTLIntervals int
	// FloodBudget is the per-interval SYN allowance RateLimitService
	// leaves a flooded service (default 100 — enough for legitimate
	// clients, three orders below a serious flood).
	FloodBudget int
	// MaxRules caps installed rules, preserving bounded memory even if
	// alerts are somehow inflated (default 4096).
	MaxRules int
}

func (c Config) withDefaults() Config {
	if c.TTLIntervals == 0 {
		c.TTLIntervals = 5
	}
	if c.FloodBudget == 0 {
		c.FloodBudget = 100
	}
	if c.MaxRules == 0 {
		c.MaxRules = 4096
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.TTLIntervals < 0 || c.FloodBudget < 0 || c.MaxRules < 0 {
		return fmt.Errorf("mitigate: negative config value: %+v", c)
	}
	return nil
}

// Engine holds the installed rules. Not safe for concurrent use.
type Engine struct {
	cfg     Config
	rules   map[ruleKey]*Rule
	dropped int64
}

// New builds an engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg.withDefaults(), rules: make(map[ruleKey]*Rule)}, nil
}

// Apply installs or refreshes rules for a batch of final alerts.
func (e *Engine) Apply(alerts []core.Alert) {
	for _, a := range alerts {
		r, ok := e.ruleFor(a)
		if !ok {
			continue
		}
		k := ruleKey{action: r.Action, sip: r.SIP, dip: r.DIP, port: r.Port}
		if existing := e.rules[k]; existing != nil {
			existing.TTL = e.cfg.TTLIntervals // refresh
			continue
		}
		if len(e.rules) >= e.cfg.MaxRules {
			continue // bounded state; oldest rules will expire naturally
		}
		e.rules[k] = &r
	}
}

// ruleFor maps one alert to its mitigation.
func (e *Engine) ruleFor(a core.Alert) (Rule, bool) {
	switch a.Type {
	case core.AlertHScan, core.AlertBlockScan:
		return Rule{Action: BlockSource, SIP: a.SIP, TTL: e.cfg.TTLIntervals}, true
	case core.AlertVScan:
		return Rule{Action: BlockPair, SIP: a.SIP, DIP: a.DIP, TTL: e.cfg.TTLIntervals}, true
	case core.AlertSYNFlood:
		if a.Spoofed {
			return Rule{
				Action: RateLimitService, DIP: a.DIP, Port: a.Port,
				Budget: e.cfg.FloodBudget, TTL: e.cfg.TTLIntervals,
			}, true
		}
		return Rule{Action: BlockPair, SIP: a.SIP, DIP: a.DIP, Port: a.Port,
			TTL: e.cfg.TTLIntervals}, true
	default:
		return Rule{}, false
	}
}

// Admit decides whether a packet passes the installed rules. Only
// connection-opening inbound SYNs are ever dropped: established traffic,
// handshake replies and everything else always pass, so mitigation can
// never cut existing connections.
func (e *Engine) Admit(pkt netmodel.Packet) bool {
	if pkt.Dir != netmodel.Inbound || !pkt.Flags.IsSYN() {
		return true
	}
	if r := e.rules[ruleKey{action: BlockSource, sip: pkt.SrcIP}]; r != nil {
		r.hits++
		e.dropped++
		return false
	}
	if r := e.rules[ruleKey{action: BlockPair, sip: pkt.SrcIP, dip: pkt.DstIP}]; r != nil {
		r.hits++
		e.dropped++
		return false
	}
	if r := e.rules[ruleKey{action: BlockPair, sip: pkt.SrcIP, dip: pkt.DstIP, port: pkt.DstPort}]; r != nil {
		r.hits++
		e.dropped++
		return false
	}
	if r := e.rules[ruleKey{action: RateLimitService, dip: pkt.DstIP, port: pkt.DstPort}]; r != nil {
		r.used++
		if r.used > r.Budget {
			r.hits++
			e.dropped++
			return false
		}
	}
	return true
}

// Tick advances rule lifetimes at the end of a detection interval:
// rate-limit budgets reset and unrefreshed rules expire.
func (e *Engine) Tick() {
	for k, r := range e.rules {
		r.used = 0
		r.TTL--
		if r.TTL <= 0 {
			delete(e.rules, k)
		}
	}
}

// Rules returns the installed rules, sorted for stable output.
func (e *Engine) Rules() []Rule {
	out := make([]Rule, 0, len(e.rules))
	for _, r := range e.rules {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Action != out[j].Action {
			return out[i].Action < out[j].Action
		}
		if out[i].SIP != out[j].SIP {
			return out[i].SIP < out[j].SIP
		}
		if out[i].DIP != out[j].DIP {
			return out[i].DIP < out[j].DIP
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Dropped returns the total SYNs dropped so far.
func (e *Engine) Dropped() int64 { return e.dropped }

// Hits returns the drop count of one rule, 0 if not installed.
func (e *Engine) Hits(r Rule) int64 {
	if installed := e.rules[ruleKey{action: r.Action, sip: r.SIP, dip: r.DIP, port: r.Port}]; installed != nil {
		return installed.hits
	}
	return 0
}

// String renders a rule.
func (r Rule) String() string {
	switch r.Action {
	case BlockSource:
		return fmt.Sprintf("drop SYNs from %s (ttl %d)", r.SIP, r.TTL)
	case BlockPair:
		if r.Port != 0 {
			return fmt.Sprintf("drop SYNs %s -> %s:%d (ttl %d)", r.SIP, r.DIP, r.Port, r.TTL)
		}
		return fmt.Sprintf("drop SYNs %s -> %s (ttl %d)", r.SIP, r.DIP, r.TTL)
	case RateLimitService:
		return fmt.Sprintf("rate-limit SYNs to %s:%d at %d/interval (ttl %d)",
			r.DIP, r.Port, r.Budget, r.TTL)
	default:
		return "unknown rule"
	}
}
