package mitigate

import (
	"testing"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
)

func mustNew(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func synIn(src, dst netmodel.IPv4, dport uint16) netmodel.Packet {
	return netmodel.Packet{SrcIP: src, DstIP: dst, SrcPort: 40000, DstPort: dport,
		Flags: netmodel.FlagSYN, Dir: netmodel.Inbound}
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{TTLIntervals: -1}); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestHScanBlocksSource(t *testing.T) {
	e := mustNew(t, Config{})
	scanner := netmodel.MustParseIPv4("203.0.113.1")
	e.Apply([]core.Alert{{Type: core.AlertHScan, SIP: scanner, Port: 445}})
	if e.Admit(synIn(scanner, 99, 445)) {
		t.Error("scanner SYN admitted")
	}
	if e.Admit(synIn(scanner, 100, 80)) {
		t.Error("scanner SYN to another port admitted (BlockSource is source-wide)")
	}
	if !e.Admit(synIn(netmodel.MustParseIPv4("8.8.8.8"), 99, 445)) {
		t.Error("bystander SYN dropped")
	}
	if e.Dropped() != 2 {
		t.Errorf("Dropped = %d", e.Dropped())
	}
}

func TestVScanBlocksPairOnly(t *testing.T) {
	e := mustNew(t, Config{})
	scanner := netmodel.MustParseIPv4("203.0.113.2")
	victim := netmodel.MustParseIPv4("129.105.1.1")
	e.Apply([]core.Alert{{Type: core.AlertVScan, SIP: scanner, DIP: victim}})
	if e.Admit(synIn(scanner, victim, 1234)) {
		t.Error("pair SYN admitted")
	}
	if !e.Admit(synIn(scanner, victim+1, 1234)) {
		t.Error("scanner blocked toward an unrelated host (vscan rule is pair-scoped)")
	}
}

func TestNonSpoofedFloodBlocksPairService(t *testing.T) {
	e := mustNew(t, Config{})
	attacker := netmodel.MustParseIPv4("198.51.100.1")
	victim := netmodel.MustParseIPv4("129.105.2.2")
	e.Apply([]core.Alert{{Type: core.AlertSYNFlood, SIP: attacker, DIP: victim, Port: 80}})
	if e.Admit(synIn(attacker, victim, 80)) {
		t.Error("flood SYN admitted")
	}
	if !e.Admit(synIn(attacker, victim, 443)) {
		t.Error("attacker blocked on an unalerted service")
	}
}

func TestSpoofedFloodRateLimitsVictim(t *testing.T) {
	e := mustNew(t, Config{FloodBudget: 10})
	victim := netmodel.MustParseIPv4("129.105.3.3")
	e.Apply([]core.Alert{{Type: core.AlertSYNFlood, DIP: victim, Port: 25, Spoofed: true}})
	admitted := 0
	for i := 0; i < 100; i++ {
		if e.Admit(synIn(netmodel.IPv4(0x08000000+uint32(i)), victim, 25)) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Errorf("admitted %d SYNs, want budget 10", admitted)
	}
	// Budget resets at the interval boundary.
	e.Tick()
	if !e.Admit(synIn(netmodel.MustParseIPv4("9.9.9.9"), victim, 25)) {
		t.Error("budget did not reset after Tick")
	}
	// Other services on the victim are untouched.
	if !e.Admit(synIn(netmodel.MustParseIPv4("9.9.9.10"), victim, 80)) {
		t.Error("rate limit leaked to another port")
	}
}

func TestNonSYNTrafficAlwaysPasses(t *testing.T) {
	e := mustNew(t, Config{})
	scanner := netmodel.MustParseIPv4("203.0.113.3")
	e.Apply([]core.Alert{{Type: core.AlertHScan, SIP: scanner, Port: 22}})
	ack := netmodel.Packet{SrcIP: scanner, DstIP: 5, SrcPort: 40000, DstPort: 22,
		Flags: netmodel.FlagACK, Dir: netmodel.Inbound}
	if !e.Admit(ack) {
		t.Error("established traffic dropped")
	}
	outSyn := synIn(scanner, 5, 22)
	outSyn.Dir = netmodel.Outbound
	if !e.Admit(outSyn) {
		t.Error("outbound traffic dropped by an inbound rule")
	}
}

func TestRulesExpireUnlessRefreshed(t *testing.T) {
	e := mustNew(t, Config{TTLIntervals: 2})
	scanner := netmodel.MustParseIPv4("203.0.113.4")
	alert := core.Alert{Type: core.AlertHScan, SIP: scanner, Port: 22}
	e.Apply([]core.Alert{alert})
	e.Tick()
	if len(e.Rules()) != 1 {
		t.Fatal("rule expired too early")
	}
	e.Apply([]core.Alert{alert}) // refresh
	e.Tick()
	e.Tick()
	if len(e.Rules()) != 0 {
		t.Errorf("refreshed rule outlived its TTL: %v", e.Rules())
	}
	if e.Admit(synIn(scanner, 9, 22)) == false {
		t.Error("expired rule still dropping")
	}
}

func TestBlockScanBlocksSource(t *testing.T) {
	e := mustNew(t, Config{})
	scanner := netmodel.MustParseIPv4("203.0.113.5")
	e.Apply([]core.Alert{{Type: core.AlertBlockScan, SIP: scanner}})
	if e.Admit(synIn(scanner, 1, 1)) {
		t.Error("block scanner admitted")
	}
}

func TestMaxRulesBoundsState(t *testing.T) {
	e := mustNew(t, Config{MaxRules: 10})
	for i := 0; i < 100; i++ {
		e.Apply([]core.Alert{{Type: core.AlertHScan, SIP: netmodel.IPv4(i), Port: 22}})
	}
	if got := len(e.Rules()); got > 10 {
		t.Errorf("rules grew to %d despite cap 10", got)
	}
}

func TestDuplicateAlertsRefreshNotDuplicate(t *testing.T) {
	e := mustNew(t, Config{})
	a := core.Alert{Type: core.AlertHScan, SIP: 7, Port: 22}
	e.Apply([]core.Alert{a, a, a})
	if len(e.Rules()) != 1 {
		t.Errorf("duplicate alerts installed %d rules", len(e.Rules()))
	}
}

func TestHitsAndRendering(t *testing.T) {
	e := mustNew(t, Config{})
	scanner := netmodel.MustParseIPv4("203.0.113.6")
	e.Apply([]core.Alert{{Type: core.AlertHScan, SIP: scanner}})
	e.Admit(synIn(scanner, 1, 80))
	e.Admit(synIn(scanner, 2, 80))
	rules := e.Rules()
	if len(rules) != 1 {
		t.Fatal("rule missing")
	}
	if e.Hits(rules[0]) != 2 {
		t.Errorf("Hits = %d", e.Hits(rules[0]))
	}
	for _, r := range []Rule{
		{Action: BlockSource, SIP: 1},
		{Action: BlockPair, SIP: 1, DIP: 2},
		{Action: BlockPair, SIP: 1, DIP: 2, Port: 80},
		{Action: RateLimitService, DIP: 2, Port: 80, Budget: 5},
	} {
		if r.String() == "" || r.Action.String() == "" {
			t.Error("empty rendering")
		}
	}
}
