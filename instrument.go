package hifind

import (
	"time"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/telemetry"
)

// instruments bundles the facade's metric handles. The zero value (all
// nil) is the uninstrumented state: every telemetry method is nil-safe,
// so an un-wired detector pays one dead branch per call site and
// nothing else — the paper's per-packet budget (§5.5.2) stays intact.
type instruments struct {
	packets   *telemetry.Counter
	flows     *telemetry.Counter
	dropped   *telemetry.Counter
	intervals *telemetry.Counter
	detection *telemetry.Histogram

	alertSyn     *telemetry.Counter
	alertHScan   *telemetry.Counter
	alertVScan   *telemetry.Counter
	alertBlock   *telemetry.Counter
	alertBurst   *telemetry.Counter
	alertPersist *telemetry.Counter
	alertReflect *telemetry.Counter

	occRSSipDport  *telemetry.Gauge
	occRSDipDport  *telemetry.Gauge
	occRSSipDip    *telemetry.Gauge
	occVerSipDport *telemetry.Gauge
	occVerDipDport *telemetry.Gauge
	occVerSipDip   *telemetry.Gauge

	candFlood  *telemetry.Gauge
	candPair   *telemetry.Gauge
	candSource *telemetry.Gauge

	inferSeconds *telemetry.Histogram
	inferKeys    *telemetry.Counter

	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	cacheEvictions *telemetry.Counter
	cacheOccupancy *telemetry.Gauge
	cacheFlush     *telemetry.Histogram
}

// newInstruments registers the hifind_* series on reg. A nil reg yields
// the zero (no-op) instruments.
func newInstruments(reg *telemetry.Registry) instruments {
	if reg == nil {
		return instruments{}
	}
	alert := func(typ string) *telemetry.Counter {
		return reg.Counter("hifind_alerts_total", "final alerts by attack type",
			telemetry.Label{Name: "type", Value: typ})
	}
	occ := func(sk string) *telemetry.Gauge {
		return reg.Gauge("hifind_sketch_occupancy_ratio",
			"fraction of nonzero sketch counters at rotation",
			telemetry.Label{Name: "sketch", Value: sk})
	}
	cand := func(step string) *telemetry.Gauge {
		return reg.Gauge("hifind_inference_candidates",
			"candidate keys surfaced by each reverse-inference step last interval",
			telemetry.Label{Name: "step", Value: step})
	}
	return instruments{
		packets: reg.Counter("hifind_packets_observed_total",
			"packets recorded into the sketches"),
		flows: reg.Counter("hifind_flows_observed_total",
			"flow records recorded into the sketches"),
		dropped: reg.Counter("hifind_dropped_non_ipv4_total",
			"packets and flows dropped as non-IPv4"),
		intervals: reg.Counter("hifind_intervals_total",
			"measurement intervals completed"),
		detection: reg.Histogram("hifind_detection_seconds",
			"per-interval detection wall time", telemetry.DefBuckets),

		alertSyn:     alert(SYNFlood.String()),
		alertHScan:   alert(HorizontalScan.String()),
		alertVScan:   alert(VerticalScan.String()),
		alertBlock:   alert(BlockScan.String()),
		alertBurst:   alert(BurstFlood.String()),
		alertPersist: alert(PersistentScan.String()),
		alertReflect: alert(Reflection.String()),

		occRSSipDport:  occ("rs_sip_dport"),
		occRSDipDport:  occ("rs_dip_dport"),
		occRSSipDip:    occ("rs_sip_dip"),
		occVerSipDport: occ("ver_sip_dport"),
		occVerDipDport: occ("ver_dip_dport"),
		occVerSipDip:   occ("ver_sip_dip"),

		candFlood:  cand("flood"),
		candPair:   cand("pair"),
		candSource: cand("source"),

		inferSeconds: reg.Histogram("hifind_inference_decode_seconds",
			"per-interval offender-key recovery wall time (all three steps)",
			telemetry.DefBuckets),
		inferKeys: reg.Counter("hifind_inference_keys_recovered_total",
			"verified offender keys recovered across all inference steps"),

		cacheHits: reg.Counter("hifind_flowcache_hits_total",
			"flow-cache probes that found their connection resident"),
		cacheMisses: reg.Counter("hifind_flowcache_misses_total",
			"flow-cache probes that had to install their connection"),
		cacheEvictions: reg.Counter("hifind_flowcache_evictions_total",
			"flow-cache entries flushed early to make room"),
		cacheOccupancy: reg.Gauge("hifind_flowcache_occupancy_ratio",
			"resident fraction of the flow cache sampled before the rotation flush"),
		cacheFlush: reg.Histogram("hifind_flowcache_flush_seconds",
			"rotation-time flow-cache drain wall time", telemetry.DefBuckets),
	}
}

// recordInterval publishes one interval's diagnostics and alerts. Runs
// once per rotation, never per packet.
func (ins *instruments) recordInterval(res core.IntervalResult) {
	ins.intervals.Inc()
	ins.detection.Observe(res.DetectionSeconds)

	d := res.Diag
	ins.occRSSipDport.Set(d.OccRSSipDport)
	ins.occRSDipDport.Set(d.OccRSDipDport)
	ins.occRSSipDip.Set(d.OccRSSipDip)
	ins.occVerSipDport.Set(d.OccVerSipDport)
	ins.occVerDipDport.Set(d.OccVerDipDport)
	ins.occVerSipDip.Set(d.OccVerSipDip)
	ins.candFlood.Set(float64(d.FloodCandidates))
	ins.candPair.Set(float64(d.PairCandidates))
	ins.candSource.Set(float64(d.SourceCandidates))
	// Warm-up intervals never ran inference; observing their zero would
	// drag the latency histogram below what recovery actually costs.
	if d.InferenceSeconds > 0 || d.KeysRecovered > 0 {
		ins.inferSeconds.Observe(d.InferenceSeconds)
		ins.inferKeys.Add(int64(d.KeysRecovered))
	}
	// Cache-less detectors report identically-zero cache diagnostics;
	// skip them so the series only move when a cache is actually wired.
	if d.CacheHits > 0 || d.CacheMisses > 0 || d.CacheFlushSeconds > 0 {
		ins.cacheHits.Add(d.CacheHits)
		ins.cacheMisses.Add(d.CacheMisses)
		ins.cacheEvictions.Add(d.CacheEvictions)
		ins.cacheOccupancy.Set(d.CacheOccupancy)
		ins.cacheFlush.Observe(d.CacheFlushSeconds)
	}

	for _, a := range res.Final {
		switch a.Type {
		case core.AlertSYNFlood:
			ins.alertSyn.Inc()
		case core.AlertHScan:
			ins.alertHScan.Inc()
		case core.AlertVScan:
			ins.alertVScan.Inc()
		case core.AlertBlockScan:
			ins.alertBlock.Inc()
		case core.AlertBurstFlood:
			ins.alertBurst.Inc()
		case core.AlertPersistScan:
			ins.alertPersist.Inc()
		case core.AlertReflection:
			ins.alertReflect.Inc()
		}
	}
}

// emitResult publishes one "alert" event per final alert plus one
// "interval" summary into sink. A nil sink is a no-op.
func emitResult(sink telemetry.Sink, res Result) {
	if sink == nil {
		return
	}
	now := time.Now()
	for _, a := range res.Final {
		fields := map[string]any{
			"type":      a.Type.String(),
			"interval":  a.Interval,
			"magnitude": a.Magnitude,
		}
		if a.Attacker.IsValid() {
			fields["attacker"] = a.Attacker.String()
		}
		if a.Victim.IsValid() {
			fields["victim"] = a.Victim.String()
		}
		if a.Port != 0 {
			fields["port"] = a.Port
		}
		if a.Spoofed {
			fields["spoofed"] = true
		}
		if a.Fanout != 0 {
			fields["fanout"] = a.Fanout
		}
		if a.Type == BurstFlood {
			fields["slot"] = a.Slot
		}
		sink.Emit(telemetry.Event{Time: now, Kind: "alert", Fields: fields})
	}
	sink.Emit(telemetry.Event{Time: now, Kind: "interval", Fields: map[string]any{
		"interval":          res.Interval,
		"raw_alerts":        len(res.Raw),
		"classified_alerts": len(res.AfterClassification),
		"final_alerts":      len(res.Final),
		"detection_seconds": res.DetectionTime.Seconds(),
	}})
}
