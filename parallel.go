package hifind

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/pipeline"
	"github.com/hifind/hifind/internal/telemetry"
)

// Parallel is a HiFIND instance whose recording stage is key-sharded
// across worker goroutines (internal/pipeline): producers hash each
// packet once and route per-bucket counter deltas to the worker owning
// that slice of every sketch's buckets, all workers writing disjoint
// shards of one shared epoch recorder. Because counter updates on
// disjoint cells commute and everything else travels as scalar
// tallies, the rotated state — and therefore every alert and every
// saved checkpoint — is bit-identical to what a sequential Detector
// produces from the same packets (TestParallelEquivalence and
// TestShardedIdentityMatrix prove it), so the parallelism is free of
// accuracy cost.
//
// Concurrency contract: Observe and ObserveFlow may be called from ONE
// goroutine at a time (they feed a single internal batching producer);
// for multi-goroutine ingestion create one Producer per feeding
// goroutine with NewProducer. EndInterval, SaveState and Close must not
// run concurrently with ingestion on the same producer; Dropped and
// Shed may be read at any time.
type Parallel struct {
	det      *core.Detector
	rcfg     core.RecorderConfig
	interval time.Duration
	eng      *pipeline.Engine
	main     *pipeline.Producer
	dropped  atomic.Int64
	ins      instruments
	sink     telemetry.Sink
}

// NewParallel builds a sharded detector. Worker count defaults to
// runtime.GOMAXPROCS(0); tune with WithWorkers, WithBatchSize,
// WithQueueDepth and WithShedOnOverload. All other options mean exactly
// what they mean for New. Sketch memory is two recorder sets total (an
// active/spare flip-flop pair shared by all workers), so the paper's
// 13.2 MB becomes ≈26 MB regardless of the worker count — fixed,
// traffic-independent, and independent of N. With WithFlowCache each
// Producer additionally owns a private cache of the configured size.
func NewParallel(opts ...Option) (*Parallel, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	rcfg, dcfg := cfg.build()
	det, err := core.NewDetector(rcfg, dcfg)
	if err != nil {
		return nil, err
	}
	engine := core.EngineFused
	if cfg.legacyEngine {
		engine = core.EngineLegacy
		det.Recorder().SetEngine(core.EngineLegacy)
	}
	policy := pipeline.Block
	if cfg.shed {
		policy = pipeline.Shed
	}
	eng, err := pipeline.New(pipeline.Config{
		Recorder:   rcfg,
		Workers:    cfg.workers,
		BatchSize:  cfg.batchSize,
		QueueDepth: cfg.queueDepth,
		Policy:     policy,
		Telemetry:  cfg.reg,
		Engine:     engine,
	})
	if err != nil {
		return nil, err
	}
	p := &Parallel{
		det:      det,
		rcfg:     rcfg,
		interval: cfg.interval,
		eng:      eng,
		ins:      newInstruments(cfg.reg),
		sink:     cfg.sink,
	}
	p.main = eng.NewProducer()
	return p, nil
}

// Interval returns the configured interval length.
func (p *Parallel) Interval() time.Duration { return p.interval }

// Workers returns the shard count.
func (p *Parallel) Workers() int { return p.eng.Workers() }

// InferenceEngine names the active offender-key recovery engine — see
// Detector.InferenceEngine.
func (p *Parallel) InferenceEngine() string { return p.det.InferenceEngine().String() }

// Observe records one packet through the default producer. Single
// goroutine only — use NewProducer for concurrent ingestion.
//
//hifind:hot
func (p *Parallel) Observe(pkt Packet) {
	ip, ok := pkt.toInternal()
	if !ok {
		p.dropped.Add(1)
		p.ins.dropped.Inc()
		return
	}
	p.main.Ingest(pipeline.Event{Pkt: ip})
	p.ins.packets.Inc()
}

// ObserveFlow records one flow summary through the default producer.
// Single goroutine only — use NewProducer for concurrent ingestion.
//
//hifind:hot
func (p *Parallel) ObserveFlow(f Flow) {
	fr, ok := f.toInternal()
	if !ok {
		p.dropped.Add(1)
		p.ins.dropped.Inc()
		return
	}
	p.main.Ingest(pipeline.Event{Flow: fr, IsFlow: true})
	p.ins.flows.Inc()
}

// observeInternal feeds a pre-converted packet (replay path).
func (p *Parallel) observeInternal(pkt netmodel.Packet) {
	p.main.Ingest(pipeline.Event{Pkt: pkt})
	p.ins.packets.Inc()
}

// observeFlowInternal feeds a pre-converted flow record (replay path).
func (p *Parallel) observeFlowInternal(fr netmodel.FlowRecord) {
	p.main.Ingest(pipeline.Event{Flow: fr, IsFlow: true})
	p.ins.flows.Inc()
}

// Dropped returns how many packets were ignored as non-IPv4, summed
// atomically across all producers.
func (p *Parallel) Dropped() int64 { return p.dropped.Load() }

// Shed returns how many events the Shed backpressure policy dropped
// (always 0 under the default blocking policy, except for events racing
// Close).
func (p *Parallel) Shed() int64 { return p.eng.Shed() }

// MemoryBytes returns the total fixed sketch memory: the detection-side
// recorder plus the engine's active/spare epoch recorder pair —
// independent of the worker count.
func (p *Parallel) MemoryBytes() int {
	return p.det.Recorder().MemoryBytes() + p.eng.MemoryBytes()
}

// EndInterval closes the measurement interval: it flushes the default
// producer, cuts the epoch across all shards (the rotation token is the
// linearization point — every event ingested before EndInterval lands
// in this interval), merges the per-worker sketches and runs detection
// over the merged state. Producers created with NewProducer must be
// flushed by their owners first, or their partial batches carry into
// the next interval.
func (p *Parallel) EndInterval() (Result, error) {
	p.main.Flush()
	merged, err := p.eng.Rotate()
	if err != nil {
		return Result{}, err
	}
	res, err := p.det.EndIntervalWith(merged)
	if err != nil {
		return Result{}, err
	}
	// The detection-side recorder never observes traffic in parallel
	// mode; copy the merged active-service memory into it (Reset+Union,
	// so the insertion count carries over too) so SaveState checkpoints
	// match the sequential detector's byte for byte.
	p.det.Recorder().Services.Reset()
	if err := p.det.Recorder().Services.Union(merged.Services); err != nil {
		return Result{}, fmt.Errorf("hifind: parallel services: %w", err)
	}
	if err := p.eng.Recycle(); err != nil {
		return Result{}, err
	}
	p.ins.recordInterval(res)
	out := convertResult(res)
	emitResult(p.sink, out)
	return out, nil
}

// SaveState serializes the cross-interval state exactly like
// Detector.SaveState — the snapshots are interchangeable between
// sequential and parallel instances built with the same options. Call
// at interval boundaries, right after EndInterval.
func (p *Parallel) SaveState() ([]byte, error) {
	return p.det.MarshalState()
}

// LoadState restores a snapshot saved by SaveState (from a sequential
// or a parallel instance). It must be called before ingestion starts:
// the restored active-service memory is seeded into every shard.
func (p *Parallel) LoadState(state []byte) error {
	if err := p.det.RestoreState(state); err != nil {
		return err
	}
	return p.eng.SeedServices(p.det.Recorder().Services)
}

// Close shuts the engine down: producers blocked on backpressure are
// released, workers drain their queues and exit, and one final
// detection runs over whatever the unfinished interval had recorded so
// no accepted event is silently lost. The instance is unusable
// afterwards; closing twice returns an error.
func (p *Parallel) Close() (Result, error) {
	p.main.Flush()
	leftover, err := p.eng.Close()
	if err != nil {
		return Result{}, err
	}
	res, err := p.det.EndIntervalWith(leftover)
	if err != nil {
		return Result{}, err
	}
	p.det.Recorder().Services.Reset()
	if err := p.det.Recorder().Services.Union(leftover.Services); err != nil {
		return Result{}, fmt.Errorf("hifind: parallel services: %w", err)
	}
	p.ins.recordInterval(res)
	out := convertResult(res)
	emitResult(p.sink, out)
	return out, nil
}

// Producer is an ingestion handle for one feeding goroutine of a
// Parallel detector. Handles batch privately, so any number may ingest
// concurrently; each individual handle must be used from a single
// goroutine at a time. Flush before EndInterval (or after the last
// event) to push out the partial batch.
type Producer struct {
	par  *Parallel
	prod *pipeline.Producer
}

// NewProducer returns a new concurrent-ingestion handle.
func (p *Parallel) NewProducer() *Producer {
	return &Producer{par: p, prod: p.eng.NewProducer()}
}

// Observe records one packet.
//
//hifind:hot
func (pr *Producer) Observe(pkt Packet) {
	ip, ok := pkt.toInternal()
	if !ok {
		pr.par.dropped.Add(1)
		pr.par.ins.dropped.Inc()
		return
	}
	pr.prod.Ingest(pipeline.Event{Pkt: ip})
	pr.par.ins.packets.Inc()
}

// ObserveFlow records one flow summary.
//
//hifind:hot
func (pr *Producer) ObserveFlow(f Flow) {
	fr, ok := f.toInternal()
	if !ok {
		pr.par.dropped.Add(1)
		pr.par.ins.dropped.Inc()
		return
	}
	pr.prod.Ingest(pipeline.Event{Flow: fr, IsFlow: true})
	pr.par.ins.flows.Inc()
}

// Flush ships the handle's partial batch to the workers.
func (pr *Producer) Flush() { pr.prod.Flush() }
