package hifind

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/hifind/hifind/internal/telemetry"
)

func synPacket(src, dst netip.Addr, dport uint16) Packet {
	return Packet{
		Timestamp: time.Unix(0, 0),
		SrcIP:     src,
		DstIP:     dst,
		SrcPort:   40000,
		DstPort:   dport,
		SYN:       true,
		Dir:       Inbound,
	}
}

func TestDetectorTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	var events []telemetry.Event
	sink := sinkFunc(func(ev telemetry.Event) { events = append(events, ev) })
	det, err := New(WithCompactSketches(), WithTelemetry(reg), WithAlertSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("10.1.2.3")
	dst := netip.MustParseAddr("192.168.0.9")
	for i := 0; i < 10; i++ {
		det.Observe(synPacket(src, dst, 80))
	}
	det.Observe(Packet{SrcIP: netip.MustParseAddr("::1"), DstIP: netip.MustParseAddr("::2"), SYN: true, Dir: Inbound})
	if _, err := det.EndInterval(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"hifind_packets_observed_total 10",
		"hifind_dropped_non_ipv4_total 1",
		"hifind_intervals_total 1",
		`hifind_sketch_occupancy_ratio{sketch="rs_dip_dport"}`,
		`hifind_inference_candidates{step="flood"}`,
		"hifind_detection_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Occupancy must be nonzero: ten packets were recorded before rotation.
	if strings.Contains(out, `hifind_sketch_occupancy_ratio{sketch="rs_dip_dport"} 0`+"\n") {
		t.Error("rs_dip_dport occupancy stayed zero despite recorded traffic")
	}
	if len(events) == 0 || events[len(events)-1].Kind != "interval" {
		t.Fatalf("sink must end with an interval summary, got %+v", events)
	}
}

func TestParallelTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	par, err := NewParallel(WithCompactSketches(), WithWorkers(2), WithBatchSize(8),
		WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("10.9.9.9")
	dst := netip.MustParseAddr("192.168.1.1")
	for i := 0; i < 100; i++ {
		par.Observe(synPacket(src, dst, 443))
	}
	if _, err := par.EndInterval(); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["hifind_packets_observed_total"] != int64(100) {
		t.Fatalf("packet counter: %v", snap["hifind_packets_observed_total"])
	}
	if n, ok := snap["pipeline_batches_total"].(int64); !ok || n == 0 {
		t.Fatalf("pipeline batches counter: %v", snap["pipeline_batches_total"])
	}
	hist, ok := snap["pipeline_epoch_barrier_seconds"].(map[string]any)
	if !ok || hist["count"].(int64) < 1 {
		t.Fatalf("epoch barrier histogram: %v", snap["pipeline_epoch_barrier_seconds"])
	}
	if _, ok := snap[`pipeline_queue_depth_high_water{worker="0"}`]; !ok {
		t.Fatalf("missing per-worker HWM gauge: %v", snap)
	}
}

// TestInstrumentedObserveAllocFree pins the instrumented per-packet
// path at zero allocations: the counters are pre-registered atomics, so
// attaching telemetry must not hand the GC any per-packet garbage.
func TestInstrumentedObserveAllocFree(t *testing.T) {
	det, err := New(WithCompactSketches(), WithTelemetry(telemetry.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	pkt := synPacket(netip.MustParseAddr("8.8.4.4"), netip.MustParseAddr("192.168.0.1"), 80)
	allocs := testing.AllocsPerRun(1000, func() {
		det.Observe(pkt)
	})
	if allocs != 0 {
		t.Errorf("instrumented Observe allocates %v times per packet, want 0", allocs)
	}
}

type sinkFunc func(telemetry.Event)

func (f sinkFunc) Emit(ev telemetry.Event) { f(ev) }
