package hifind_test

import (
	"fmt"
	"net/netip"
	"time"

	hifind "github.com/hifind/hifind"
)

// Example demonstrates the basic detection loop: observe packets, close
// the measurement interval, read typed alerts.
func Example() {
	det, err := hifind.New(
		hifind.WithCompactSketches(),
		hifind.WithSeed(0xD0C),
		hifind.WithInterval(time.Minute),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	victim := netip.MustParseAddr("10.0.0.25")

	// Interval 0: benign traffic seeds the forecast and marks the mail
	// service active.
	observeBenign(det, victim, 200)
	if _, err := det.EndInterval(); err != nil {
		fmt.Println(err)
		return
	}

	// Intervals 1–2: a spoofed SYN flood joins the benign traffic.
	for iv := 0; iv < 2; iv++ {
		observeBenign(det, victim, 200)
		for i := 0; i < 500; i++ {
			det.Observe(hifind.Packet{
				SrcIP:   netip.AddrFrom4([4]byte{byte(30 + i%60), byte(i >> 8), byte(i), 7}),
				DstIP:   victim,
				SrcPort: uint16(1024 + i), DstPort: 25,
				SYN: true, Dir: hifind.Inbound,
			})
		}
		res, err := det.EndInterval()
		if err != nil {
			fmt.Println(err)
			return
		}
		for _, a := range res.Final {
			fmt.Printf("%v victim=%s port=%d spoofed=%v\n", a.Type, a.Victim, a.Port, a.Spoofed)
		}
	}
	// Output:
	// syn-flood victim=10.0.0.25 port=25 spoofed=true
}

// observeBenign plays completed handshakes against the victim's mail
// service so it registers as active.
func observeBenign(det *hifind.Detector, server netip.Addr, flows int) {
	for i := 0; i < flows; i++ {
		client := netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 9})
		sport := uint16(30000 + i)
		det.Observe(hifind.Packet{SrcIP: client, DstIP: server, SrcPort: sport, DstPort: 25,
			SYN: true, Dir: hifind.Inbound})
		det.Observe(hifind.Packet{SrcIP: server, DstIP: client, SrcPort: 25, DstPort: sport,
			SYN: true, ACK: true, Dir: hifind.Outbound})
	}
}

// ExampleDetector_SaveState shows checkpointing across a process restart.
func ExampleDetector_SaveState() {
	opts := []hifind.Option{hifind.WithCompactSketches(), hifind.WithSeed(0xCAFE)}
	det, err := hifind.New(opts...)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := det.EndInterval(); err != nil {
		fmt.Println(err)
		return
	}
	state, err := det.SaveState()
	if err != nil {
		fmt.Println(err)
		return
	}

	// ... process restarts ...
	restarted, err := hifind.New(opts...)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := restarted.LoadState(state); err != nil {
		fmt.Println(err)
		return
	}
	res, err := restarted.EndInterval()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("resumed at interval %d\n", res.Interval)
	// Output:
	// resumed at interval 1
}
