// Package hifind implements HiFIND, the DoS-resilient high-speed
// flow-level intrusion detection system of Gao, Li and Chen (ICDCS 2006).
//
// HiFIND records TCP control-plane traffic into a small, fixed set of
// sketches — reversible sketches keyed by {SIP,Dport}, {DIP,Dport} and
// {SIP,DIP} recording #SYN−#SYN/ACK, an original k-ary sketch recording
// #SYN, and two novel two-dimensional sketches — about 13 MB in total
// regardless of traffic volume. Once per interval it forecasts each
// sketch with an EWMA model, reverses the heavy forecast errors back into
// concrete attacker/victim keys, classifies each detection as a SYN
// flood, horizontal scan or vertical scan, and filters benign anomalies
// (congestion, misconfiguration) out of the flooding alerts.
//
// Basic use:
//
//	det, err := hifind.New()
//	...
//	for pkt := range packets {
//		det.Observe(pkt)
//	}
//	res, err := det.EndInterval() // once per minute
//	for _, alert := range res.Final { ... }
//
// Because every recording structure is linear, per-router state can be
// serialized (Recorder, StateSnapshot) and summed at a central site
// (EndIntervalMerged) to detect attacks split across asymmetric routes —
// see examples/multirouter.
package hifind

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/telemetry"
)

// Direction says which way a packet crossed the monitored edge.
type Direction int

// Directions.
const (
	// Inbound packets enter the monitored network from outside.
	Inbound Direction = iota + 1
	// Outbound packets leave the monitored network.
	Outbound
)

// Packet is one observed TCP packet event, described by the fields HiFIND
// needs: the IPv4 4-tuple, the handshake-relevant flags, and direction.
type Packet struct {
	Timestamp time.Time
	SrcIP     netip.Addr
	DstIP     netip.Addr
	SrcPort   uint16
	DstPort   uint16
	SYN       bool
	ACK       bool
	FIN       bool
	RST       bool
	Dir       Direction
}

// toInternal converts the public packet; non-IPv4 addresses report ok=false.
func (p Packet) toInternal() (netmodel.Packet, bool) {
	if !p.SrcIP.Is4() || !p.DstIP.Is4() {
		return netmodel.Packet{}, false
	}
	src, dst := p.SrcIP.As4(), p.DstIP.As4()
	var flags netmodel.TCPFlags
	if p.SYN {
		flags |= netmodel.FlagSYN
	}
	if p.ACK {
		flags |= netmodel.FlagACK
	}
	if p.FIN {
		flags |= netmodel.FlagFIN
	}
	if p.RST {
		flags |= netmodel.FlagRST
	}
	return netmodel.Packet{
		Timestamp: p.Timestamp,
		SrcIP:     netmodel.IPv4(uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])),
		DstIP:     netmodel.IPv4(uint32(dst[0])<<24 | uint32(dst[1])<<16 | uint32(dst[2])<<8 | uint32(dst[3])),
		SrcPort:   p.SrcPort,
		DstPort:   p.DstPort,
		Flags:     flags,
		Dir:       netmodel.Direction(p.Dir),
	}, true
}

// AlertType classifies a detection.
type AlertType int

// Alert types.
const (
	SYNFlood AlertType = iota + 1
	HorizontalScan
	VerticalScan
	// BlockScan marks a source sweeping an address range × port range,
	// recognized by merging its simultaneous horizontal- and vertical-
	// scan detections.
	BlockScan
	// BurstFlood marks a sub-interval SYN pulse against one service:
	// below the flood threshold over the whole interval, above the slot
	// threshold inside one window (WithBurstDetection).
	BurstFlood
	// PersistentScan marks a source probing one port below the
	// per-interval threshold, interval after interval
	// (WithPersistentFlowDetection).
	PersistentScan
	// Reflection marks unsolicited SYN/ACK backscatter flooding a victim
	// through a reflecting service port (WithReflectionDetection).
	Reflection
)

// String names the alert type.
func (t AlertType) String() string {
	switch t {
	case SYNFlood:
		return "syn-flood"
	case HorizontalScan:
		return "hscan"
	case VerticalScan:
		return "vscan"
	case BlockScan:
		return "blockscan"
	case BurstFlood:
		return "burst-flood"
	case PersistentScan:
		return "persist-scan"
	case Reflection:
		return "reflection"
	default:
		return fmt.Sprintf("alerttype(%d)", int(t))
	}
}

// Alert is one detected intrusion with the culprit flow keys recovered by
// the reversible sketches.
type Alert struct {
	Type     AlertType
	Interval int
	// Attacker is the offending source (invalid Addr for spoofed floods).
	Attacker netip.Addr
	// Victim is the targeted address (invalid for horizontal scans, which
	// sweep many).
	Victim netip.Addr
	// Port is the targeted service port (0 for vertical scans).
	Port uint16
	// Spoofed marks floods with no attributable source.
	Spoofed bool
	// Magnitude is the forecast-error change that triggered the alert,
	// in un-responded SYNs per interval.
	Magnitude float64
	// Fanout approximates the number of distinct hosts (hscan) or ports
	// (vscan) touched.
	Fanout int
	// Slot is the sub-interval window whose counters peaked, for
	// burst-flood alerts (0 otherwise).
	Slot int
	// Partial marks alerts from an interval merged without every router's
	// report (multi-router aggregation under a deadline); magnitudes are
	// lower bounds there.
	Partial bool
}

// String renders the alert for humans.
func (a Alert) String() string {
	switch a.Type {
	case SYNFlood:
		who := "spoofed sources"
		if !a.Spoofed && a.Attacker.IsValid() {
			who = a.Attacker.String()
		}
		return fmt.Sprintf("SYN flood: %s -> %s:%d (Δ=%.0f unresponded SYNs)",
			who, a.Victim, a.Port, a.Magnitude)
	case HorizontalScan:
		return fmt.Sprintf("horizontal scan: %s probing port %d on ~%d hosts (Δ=%.0f)",
			a.Attacker, a.Port, a.Fanout, a.Magnitude)
	case VerticalScan:
		return fmt.Sprintf("vertical scan: %s probing %s on ~%d ports (Δ=%.0f)",
			a.Attacker, a.Victim, a.Fanout, a.Magnitude)
	case BlockScan:
		return fmt.Sprintf("block scan: %s sweeping an address × port block (%d scan keys, Δ=%.0f)",
			a.Attacker, a.Fanout, a.Magnitude)
	case BurstFlood:
		return fmt.Sprintf("burst flood: pulse against %s:%d in window %d (peak=%.0f SYNs)",
			a.Victim, a.Port, a.Slot, a.Magnitude)
	case PersistentScan:
		return fmt.Sprintf("persistent scan: %s probing port %d below threshold on ~%d hosts (rate=%.0f/interval)",
			a.Attacker, a.Port, a.Fanout, a.Magnitude)
	case Reflection:
		return fmt.Sprintf("reflection: unsolicited SYN/ACKs flooding %s via port %d (Δ=%.0f)",
			a.Victim, a.Port, a.Magnitude)
	default:
		return "unknown alert"
	}
}

// Result reports one interval's detections at each pipeline phase: Raw
// (three-step reversible-sketch detection), AfterClassification (2D
// sketches have re-typed stealthy floods reported as scans) and Final
// (flooding false-positive heuristics applied). Most callers only need
// Final; the earlier phases exist for observability and research.
type Result struct {
	Interval            int
	Raw                 []Alert
	AfterClassification []Alert
	Final               []Alert
	DetectionTime       time.Duration
	// Partial marks an interval whose merge closed at the collection
	// deadline without every router's state. Detection over the surviving
	// routers is sound but a lower bound.
	Partial bool
}

// Detector is a complete HiFIND instance. The sketch-recording path is
// not safe for concurrent use: Observe, ObserveFlow and EndInterval
// must all run on one goroutine (or be externally serialized). Callers
// that want multiple feeding goroutines should use NewParallel, which
// shards recording across workers and merges losslessly by sketch
// linearity. Only Dropped may be called concurrently with ingestion;
// its counter is atomic.
type Detector struct {
	det      *core.Detector
	rcfg     core.RecorderConfig
	interval time.Duration
	dropped  atomic.Int64
	ins      instruments
	sink     telemetry.Sink
}

// New builds a detector with the paper's default configuration (13.2 MB
// of sketches, one-minute intervals, one un-responded SYN per second).
func New(opts ...Option) (*Detector, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	rcfg, dcfg := cfg.build()
	det, err := core.NewDetector(rcfg, dcfg)
	if err != nil {
		return nil, err
	}
	if cfg.legacyEngine {
		det.Recorder().SetEngine(core.EngineLegacy)
	}
	return &Detector{
		det:      det,
		rcfg:     rcfg,
		interval: cfg.interval,
		ins:      newInstruments(cfg.reg),
		sink:     cfg.sink,
	}, nil
}

// Interval returns the configured interval length.
func (d *Detector) Interval() time.Duration { return d.interval }

// InferenceEngine names the active offender-key recovery engine:
// "reverse" (reversible-sketch search, the default) or "invertible"
// (O(buckets) invertible-sketch decode, WithInvertibleInference).
func (d *Detector) InferenceEngine() string { return d.det.InferenceEngine().String() }

// Observe records one packet. Non-IPv4 packets are counted and dropped
// (the paper's system is IPv4-only). Not safe for concurrent use — see
// the Detector contract.
//
//hifind:hot
func (d *Detector) Observe(p Packet) {
	ip, ok := p.toInternal()
	if !ok {
		d.dropped.Add(1)
		d.ins.dropped.Inc()
		return
	}
	d.det.Observe(ip)
	d.ins.packets.Inc()
}

// Flow is a NetFlow-style unidirectional flow summary, the alternative
// input unit to packets (the paper's evaluation consumed NetFlow exports,
// §5.1). SYNs counts connection-opening SYNs in the flow; SYNACKs counts
// handshake answers (meaningful for flows originating at the server side).
type Flow struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Dir     Direction
	SYNs    int
	SYNACKs int
}

// toInternal converts the public flow; non-IPv4 addresses report ok=false.
func (f Flow) toInternal() (netmodel.FlowRecord, bool) {
	if !f.SrcIP.Is4() || !f.DstIP.Is4() {
		return netmodel.FlowRecord{}, false
	}
	src, dst := f.SrcIP.As4(), f.DstIP.As4()
	return netmodel.FlowRecord{
		SrcIP:   netmodel.IPv4(uint32(src[0])<<24 | uint32(src[1])<<16 | uint32(src[2])<<8 | uint32(src[3])),
		DstIP:   netmodel.IPv4(uint32(dst[0])<<24 | uint32(dst[1])<<16 | uint32(dst[2])<<8 | uint32(dst[3])),
		SrcPort: f.SrcPort,
		DstPort: f.DstPort,
		Dir:     netmodel.Direction(f.Dir),
		SYNs:    f.SYNs,
		SYNACKs: f.SYNACKs,
	}, true
}

// ObserveFlow records one flow summary. Non-IPv4 flows are counted and
// dropped like non-IPv4 packets. Not safe for concurrent use — see the
// Detector contract.
//
//hifind:hot
func (d *Detector) ObserveFlow(f Flow) {
	fr, ok := f.toInternal()
	if !ok {
		d.dropped.Add(1)
		d.ins.dropped.Inc()
		return
	}
	d.det.ObserveFlow(fr)
	d.ins.flows.Inc()
}

// Dropped returns how many packets were ignored as non-IPv4. Safe to
// call concurrently with ingestion.
func (d *Detector) Dropped() int64 { return d.dropped.Load() }

// observeInternal feeds a pre-converted packet (replay path).
func (d *Detector) observeInternal(pkt netmodel.Packet) {
	d.det.Observe(pkt)
	d.ins.packets.Inc()
}

// observeFlowInternal feeds a pre-converted flow record (replay path).
func (d *Detector) observeFlowInternal(fr netmodel.FlowRecord) {
	d.det.ObserveFlow(fr)
	d.ins.flows.Inc()
}

// MemoryBytes returns the total sketch memory, which is independent of
// traffic volume — the basis of HiFIND's DoS resilience.
func (d *Detector) MemoryBytes() int { return d.det.Recorder().MemoryBytes() }

// EndInterval closes the current measurement interval, runs detection and
// resets the recording structures for the next interval.
func (d *Detector) EndInterval() (Result, error) {
	res, err := d.det.EndInterval()
	if err != nil {
		return Result{}, err
	}
	d.ins.recordInterval(res)
	out := convertResult(res)
	emitResult(d.sink, out)
	return out, nil
}

// EndIntervalMerged runs detection over the sum of this detector's own
// recorded state and the serialized states of remote Recorders (the
// multi-router deployment of paper §3.1/Figure 3). All participants must
// have been built with the same options, in particular the same seed.
func (d *Detector) EndIntervalMerged(states ...[]byte) (Result, error) {
	merged, err := core.NewRecorder(d.rcfg)
	if err != nil {
		return Result{}, err
	}
	if err := merged.Merge(d.det.Recorder()); err != nil {
		return Result{}, err
	}
	for i, state := range states {
		rec, err := core.NewRecorder(d.rcfg)
		if err != nil {
			return Result{}, err
		}
		if err := rec.UnmarshalBinary(state); err != nil {
			return Result{}, fmt.Errorf("hifind: state %d: %w", i, err)
		}
		if err := merged.Merge(rec); err != nil {
			return Result{}, fmt.Errorf("hifind: state %d: %w", i, err)
		}
	}
	res, err := d.det.EndIntervalWith(merged)
	if err != nil {
		return Result{}, err
	}
	d.ins.recordInterval(res)
	out := convertResult(res)
	emitResult(d.sink, out)
	return out, nil
}

// SaveState serializes the detector's cross-interval state — EWMA
// forecasts, active-service memory, alert persistence — so a restarted
// process can resume without re-learning (see LoadState). Call it at
// interval boundaries, right after EndInterval.
func (d *Detector) SaveState() ([]byte, error) {
	return d.det.MarshalState()
}

// LoadState restores state saved by SaveState into a detector built with
// the same options.
func (d *Detector) LoadState(state []byte) error {
	return d.det.RestoreState(state)
}

// Recorder is a recording-only HiFIND instance for edge routers in an
// aggregated deployment: it observes traffic and ships its serialized
// sketch state to the site running the Detector. Not safe for concurrent
// use.
type Recorder struct {
	rec     *core.Recorder
	dropped atomic.Int64
	ins     instruments
}

// NewRecorder builds a recording-only instance. Use the same options as
// the central Detector.
func NewRecorder(opts ...Option) (*Recorder, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	rcfg, _ := cfg.build()
	rec, err := core.NewRecorder(rcfg)
	if err != nil {
		return nil, err
	}
	if cfg.legacyEngine {
		rec.SetEngine(core.EngineLegacy)
	}
	return &Recorder{rec: rec, ins: newInstruments(cfg.reg)}, nil
}

// Observe records one packet.
//
//hifind:hot
func (r *Recorder) Observe(p Packet) {
	ip, ok := p.toInternal()
	if !ok {
		r.dropped.Add(1)
		r.ins.dropped.Inc()
		return
	}
	r.rec.Observe(ip)
	r.ins.packets.Inc()
}

// Dropped returns how many packets were ignored as non-IPv4. Safe to
// call concurrently with ingestion.
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// StateSnapshot serializes the interval's recorded state for transport to
// the aggregation site and resets the recorder for the next interval.
func (r *Recorder) StateSnapshot() ([]byte, error) {
	data, err := r.rec.MarshalBinary()
	if err != nil {
		return nil, err
	}
	r.rec.Reset()
	return data, nil
}

// MemoryBytes returns the recorder's fixed sketch memory.
func (r *Recorder) MemoryBytes() int { return r.rec.MemoryBytes() }

// convertResult maps the internal result to the public one.
func convertResult(res core.IntervalResult) Result {
	return Result{
		Interval:            res.Interval,
		Raw:                 convertAlerts(res.Raw),
		AfterClassification: convertAlerts(res.Phase2),
		Final:               convertAlerts(res.Final),
		DetectionTime:       time.Duration(res.DetectionSeconds * float64(time.Second)),
		Partial:             res.Partial,
	}
}

func convertAlerts(in []core.Alert) []Alert {
	out := make([]Alert, len(in))
	for i, a := range in {
		out[i] = Alert{
			Interval:  a.Interval,
			Spoofed:   a.Spoofed,
			Magnitude: a.Estimate,
			Fanout:    a.FanoutEstimate,
			Port:      a.Port,
			Slot:      a.Slot,
			Partial:   a.Partial,
		}
		switch a.Type {
		case core.AlertSYNFlood:
			out[i].Type = SYNFlood
			out[i].Victim = toAddr(a.DIP)
			if !a.Spoofed {
				out[i].Attacker = toAddr(a.SIP)
			}
		case core.AlertHScan:
			out[i].Type = HorizontalScan
			out[i].Attacker = toAddr(a.SIP)
		case core.AlertVScan:
			out[i].Type = VerticalScan
			out[i].Attacker = toAddr(a.SIP)
			out[i].Victim = toAddr(a.DIP)
		case core.AlertBlockScan:
			out[i].Type = BlockScan
			out[i].Attacker = toAddr(a.SIP)
		case core.AlertBurstFlood:
			out[i].Type = BurstFlood
			out[i].Victim = toAddr(a.DIP)
		case core.AlertPersistScan:
			out[i].Type = PersistentScan
			out[i].Attacker = toAddr(a.SIP)
		case core.AlertReflection:
			out[i].Type = Reflection
			out[i].Victim = toAddr(a.DIP)
		}
	}
	return out
}

func toAddr(ip netmodel.IPv4) netip.Addr {
	return netip.AddrFrom4(ip.Octets())
}
