package hifind_test

// Facade-level differential suite for the flow-aggregation cache: every
// golden scenario is replayed through the cache-less detector (the
// witness) and cache-enabled variants — a large cache, a deliberately
// tiny one that evicts constantly, and a sharded detector with one
// cache per worker — and the complete per-interval alert output must
// agree exactly. Together with the byte-identity tests in internal/core
// this proves the cache changes only speed, never detection behavior,
// on the same traces the golden regression suite pins. The suite also
// covers the aggregated deployment (cached remote Recorders merged into
// a cached central Detector), checkpoint round-trips, and the loud
// failure on cache-configuration mismatch.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/pcap"
	"github.com/hifind/hifind/internal/trace"
)

func TestFlowCacheDifferentialGoldenTraces(t *testing.T) {
	for name, sc := range goldenScenarios() {
		t.Run(name, func(t *testing.T) {
			cfg := sc.cfg
			g, err := trace.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			w := pcap.NewWriter(&buf)
			if err := g.Stream(w.WritePacket); err != nil {
				t.Fatal(err)
			}
			capture := buf.Bytes()
			edge := []string{fmt.Sprintf("%s/16", cfg.InternalPrefix)}

			variants := []struct {
				name   string
				replay func(t *testing.T) string
			}{
				{"uncached-sequential", func(t *testing.T) string {
					return replayGolden(t, capture, edge, newCompact(t, sc.options()...))
				}},
				{"cached-sequential", func(t *testing.T) string {
					return replayGolden(t, capture, edge,
						newCompact(t, sc.options(hifind.WithFlowCache(4096))...))
				}},
				// A 64-entry cache in front of hundreds of concurrent flows
				// thrashes: almost every install evicts. The alert output
				// must not care.
				{"cached-tiny", func(t *testing.T) string {
					return replayGolden(t, capture, edge,
						newCompact(t, sc.options(hifind.WithFlowCache(64))...))
				}},
				{"cached-workers-3", func(t *testing.T) string {
					p := newParallelCompact(t, sc.options(hifind.WithWorkers(3),
						hifind.WithBatchSize(64), hifind.WithFlowCache(4096))...)
					defer p.Close()
					return replayGolden(t, capture, edge, p)
				}},
			}
			want := variants[0].replay(t)
			if name != "benign-only" && want == "" {
				t.Fatal("witness variant produced no output; the equivalence would be vacuous")
			}
			for _, v := range variants[1:] {
				if got := v.replay(t); got != want {
					t.Errorf("%s diverged from uncached-sequential:\n%s", v.name, goldenDiff(want, got))
				}
			}
		})
	}
}

// TestFlowCacheAggregatedDeployment is the three-router combine at the
// facade level: traffic split across two cached remote Recorders and a
// cached central Detector, merged each interval, must alert exactly like
// the same deployment without caches. StateSnapshot flushes the remote
// caches, so the wire format is unchanged and the merge stays exact.
func TestFlowCacheAggregatedDeployment(t *testing.T) {
	intervals := equivTrace(t)

	type site struct {
		det  *hifind.Detector
		recs [2]*hifind.Recorder
	}
	build := func(opts ...hifind.Option) site {
		s := site{det: newCompact(t, opts...)}
		for i := range s.recs {
			r, err := hifind.NewRecorder(append([]hifind.Option{hifind.WithCompactSketches()}, opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			s.recs[i] = r
		}
		return s
	}
	cached := build(hifind.WithFlowCache(512))
	plain := build()

	run := func(s site, pkts []netmodel.Packet) hifind.Result {
		t.Helper()
		// Deterministic 3-way split: each site sees every third packet.
		for i, p := range pkts {
			switch i % 3 {
			case 0:
				s.det.Observe(toPublic(p))
			case 1:
				s.recs[0].Observe(toPublic(p))
			case 2:
				s.recs[1].Observe(toPublic(p))
			}
		}
		states := make([][]byte, 0, len(s.recs))
		for _, r := range s.recs {
			state, err := r.StateSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			states = append(states, state)
		}
		res, err := s.det.EndIntervalMerged(states...)
		if err != nil {
			t.Fatal(err)
		}
		return stripTimes(res)
	}

	sawFinal := false
	for i, pkts := range intervals {
		cres, pres := run(cached, pkts), run(plain, pkts)
		if !reflect.DeepEqual(cres, pres) {
			t.Errorf("interval %d: cached aggregated deployment diverged from cache-less", i)
		}
		sawFinal = sawFinal || len(cres.Final) > 0
	}
	if !sawFinal {
		t.Fatal("aggregated deployment never alerted; the equivalence would be vacuous")
	}
}

// TestFlowCacheCheckpointRoundTrip proves checkpointing under a live
// cache: save at an interval boundary, restore into a fresh cached
// detector, and the continuation must match a never-checkpointed cached
// run bit-for-bit — identical results and identical subsequent
// checkpoints. SaveState carries only cross-interval state, and
// EndInterval has already drained the cache, so nothing is lost.
func TestFlowCacheCheckpointRoundTrip(t *testing.T) {
	intervals := equivTrace(t)
	const handoff = 2
	cacheOpt := hifind.WithFlowCache(256)

	straight := newCompact(t, cacheOpt)
	restarted := newCompact(t, cacheOpt)
	for _, pkts := range intervals[:handoff] {
		for _, p := range pkts {
			straight.Observe(toPublic(p))
			restarted.Observe(toPublic(p))
		}
		if _, err := straight.EndInterval(); err != nil {
			t.Fatal(err)
		}
		if _, err := restarted.EndInterval(); err != nil {
			t.Fatal(err)
		}
	}
	checkpoint, err := restarted.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	restored := newCompact(t, cacheOpt)
	if err := restored.LoadState(checkpoint); err != nil {
		t.Fatal(err)
	}
	for i, pkts := range intervals[handoff:] {
		for _, p := range pkts {
			straight.Observe(toPublic(p))
			restored.Observe(toPublic(p))
		}
		sres, err := straight.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		rres, err := restored.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripTimes(sres), stripTimes(rres)) {
			t.Errorf("interval %d after restore: results diverge", handoff+i)
		}
		sstate, err := straight.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		rstate, err := restored.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sstate, rstate) {
			t.Errorf("interval %d after restore: checkpoints not bit-identical", handoff+i)
		}
	}
}

// TestFlowCacheWireFormatInterop: StateSnapshot flushes the cache
// before serializing, so the wire format carries no trace of the cache
// and snapshots interchange freely across cached and cache-less
// participants — a cache-less remote merged into a cached central site
// must alert exactly like an all-cache-less deployment. (Mixing live
// Recorder objects with differing cache configurations, by contrast,
// fails loudly at Merge — pinned in internal/core.)
func TestFlowCacheWireFormatInterop(t *testing.T) {
	intervals := equivTrace(t)
	run := func(central *hifind.Detector, remote *hifind.Recorder) []hifind.Result {
		t.Helper()
		results := make([]hifind.Result, 0, len(intervals))
		for _, pkts := range intervals {
			for i, p := range pkts {
				if i%2 == 0 {
					central.Observe(toPublic(p))
				} else {
					remote.Observe(toPublic(p))
				}
			}
			state, err := remote.StateSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			res, err := central.EndIntervalMerged(state)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, stripTimes(res))
		}
		return results
	}
	plainRemote, err := hifind.NewRecorder(hifind.WithCompactSketches())
	if err != nil {
		t.Fatal(err)
	}
	mixed := run(newCompact(t, hifind.WithFlowCache(512)), plainRemote)
	plainRemote2, err := hifind.NewRecorder(hifind.WithCompactSketches())
	if err != nil {
		t.Fatal(err)
	}
	plain := run(newCompact(t), plainRemote2)
	if !reflect.DeepEqual(mixed, plain) {
		t.Error("cached central + cache-less remote diverged from all-cache-less deployment")
	}
}
