// Command tracegen generates synthetic evaluation traces as libpcap files
// or NetFlow v5 export streams.
//
//	tracegen -preset nu -out nu.pcap                    # NU-like mixture
//	tracegen -preset lbl -intervals 60 -out lbl.pcap    # longer LBL-like trace
//	tracegen -preset nu -format netflow -out nu.nf5     # NetFlow v5 export
//	tracegen -preset nu -truth -out nu.pcap             # also print ground truth
//
// Pcap captures replay through `hifind -pcap` or any pcap tool; NetFlow
// streams replay through `hifind -netflow`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hifind/hifind/internal/netflow"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/pcap"
	"github.com/hifind/hifind/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		preset    = flag.String("preset", "nu", "trace preset: nu, lbl, burst, stealth or reflection")
		out       = flag.String("out", "trace.pcap", "output pcap path")
		seed      = flag.Int64("seed", 101, "generator seed")
		intervals = flag.Int("intervals", 30, "trace length in one-minute intervals")
		scale     = flag.Float64("scale", 1, "attack-count multiplier")
		format    = flag.String("format", "pcap", "output format: pcap, pcapng or netflow")
		truth     = flag.Bool("truth", false, "print the ground-truth event list")
		zipf      = flag.Float64("zipf", 0, "Zipf exponent (> 1) skewing background flows onto a stable elephant-client pool; 0 keeps uniform clients")
	)
	flag.Parse()

	var cfg trace.Config
	switch *preset {
	case "nu":
		cfg = trace.NUConfig(*seed, *intervals, *scale)
	case "lbl":
		cfg = trace.LBLConfig(*seed, *intervals, *scale)
	case "burst":
		cfg = trace.BurstPulseConfig(*seed, *intervals)
	case "stealth":
		cfg = trace.StealthScanConfig(*seed, *intervals)
	case "reflection":
		cfg = trace.ReflectionConfig(*seed, *intervals)
	default:
		return fmt.Errorf("unknown preset %q (want nu, lbl, burst, stealth or reflection)", *preset)
	}
	cfg.ZipfSkew = *zipf
	gen, err := trace.New(cfg)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	packets := 0
	switch *format {
	case "pcap":
		w := pcap.NewWriter(bw)
		err = gen.Stream(func(p netmodel.Packet) error {
			packets++
			return w.WritePacket(p)
		})
		if err != nil {
			return err
		}
	case "pcapng":
		w := pcap.NewNGWriter(bw)
		err = gen.Stream(func(p netmodel.Packet) error {
			packets++
			return w.WritePacket(p)
		})
		if err != nil {
			return err
		}
	case "netflow":
		w := netflow.NewWriter(bw, cfg.Start)
		for i := 0; i < cfg.Intervals; i++ {
			pkts, err := gen.GenerateInterval(i)
			if err != nil {
				return err
			}
			packets += len(pkts)
			for _, rec := range netflow.FromPackets(pkts, cfg.Start) {
				ts := cfg.Start.Add(time.Duration(rec.LastMs) * time.Millisecond)
				if err := w.Add(rec, ts); err != nil {
					return err
				}
			}
			if err := w.Flush(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown format %q (want pcap, pcapng or netflow)", *format)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets over %d intervals to %s (%s)\n", packets, cfg.Intervals, *out, *format)
	if *truth {
		fmt.Println("\nground truth:")
		for _, a := range gen.Attacks() {
			fmt.Printf("  [%s] intervals %d–%d rate %d/iv victim %s ports %v — %s\n",
				a.Type, a.StartInterval, a.EndInterval, a.Rate, a.Victim, a.Ports, a.Cause)
		}
	}
	return nil
}
