// Command benchgate enforces the performance contracts of the update
// and inference engines: it compares a freshly measured comparison
// against the committed baseline JSON and exits non-zero on regression.
//
// The gate judges speedups — engine-vs-engine ratios measured back to
// back in one process — never absolute rates, so a slower CI machine
// cannot fail the gate and a faster one cannot mask a regression.
//
// Hot-path mode (`-table hotpath`, the BENCH_hotpath.json shape written
// by `benchtables -table hotpath`):
//
//  1. FlowSpeedup ≥ -min-flow-speedup (default 2.0): the weighted-update
//     collapse of NetFlow replay must survive; this is the floor the
//     fused engine exists to clear, not a relative check.
//  2. PacketSpeedup ≥ 1.0: the fused engine must never be slower than
//     legacy on the per-packet path.
//  3. Each fresh speedup ≥ (1 - tolerance) × baseline speedup (default
//     tolerance 10%): the margin recorded in the committed JSON must not
//     silently erode.
//
// Inference mode (`-table inference`, the BENCH_inference.json shape
// written by `benchtables -table inference`):
//
//  1. SpeedupRatio ≥ -min-inference-speedup (default 5.0): the O(buckets)
//     decode must beat the reverse-hashing search by this floor.
//  2. SpeedupRatio ≥ (1 - tolerance) × baseline: decode latency must not
//     silently regress.
//  3. InvertibleRecall ≥ ReverseRecall (fresh run): the decode may never
//     recover fewer true offender keys than the witness engine it
//     replaces.
//
// Cache mode (`-table cache`, the BENCH_cache.json shape written by
// `benchtables -table cache`):
//
//  1. PacketSpeedup ≥ -min-cache-speedup (default 1.5): the flow cache
//     must keep beating the bare fused engine on Zipf-skewed packets.
//  2. FlowSpeedup ≥ 1.0: cached NetFlow replay must never be slower.
//  3. Each fresh speedup ≥ (1 - tolerance) × baseline speedup.
//  4. StateIdentical must be true: the measurement's differential anchor
//     (cached and cache-less recorders marshal to the same bytes) is a
//     correctness invariant, not a perf number.
//
// Pipeline mode (`-table pipeline`, the BENCH_pipeline.json shape
// written by `benchtables -table pipeline`):
//
//  1. On a machine with GOMAXPROCS ≥ 4: the 4-worker speedup must reach
//     -min-scale-speedup (default 2.0) — sharding must actually scale,
//     not merely avoid slowing down — and the speedup curve must stay
//     monotone (within tolerance) for worker counts up to GOMAXPROCS.
//     On smaller machines these scaling checks are skipped with a note:
//     a 1-core box cannot measure parallel speedup, and fabricating a
//     curve would be worse than not gating it.
//  2. Always: each fresh per-worker-count speedup ≥ (1 - tolerance) ×
//     the committed baseline for the same worker count, so engine
//     overhead cannot silently grow even where parallelism cannot show.
//
// Usage:
//
//	benchgate -baseline BENCH_hotpath.json -fresh /tmp/fresh.json
//	benchgate -table inference -baseline BENCH_inference.json -fresh /tmp/fresh.json
//	benchgate -table cache -baseline BENCH_cache.json -fresh /tmp/fresh.json
//	benchgate -table pipeline -baseline BENCH_pipeline.json -fresh /tmp/fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/hifind/hifind/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table        = flag.String("table", "hotpath", "which contract to enforce: hotpath, inference, cache or pipeline")
		baselinePath = flag.String("baseline", "", "committed baseline JSON (default BENCH_<table>.json)")
		freshPath    = flag.String("fresh", "", "freshly measured JSON (required)")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed fractional speedup regression vs baseline")
		minFlow      = flag.Float64("min-flow-speedup", 2.0, "absolute floor for the NetFlow replay speedup")
		minInfer     = flag.Float64("min-inference-speedup", 5.0, "absolute floor for the invertible decode speedup")
		minCache     = flag.Float64("min-cache-speedup", 1.5, "absolute floor for the flow-cache packet speedup on Zipf traffic")
		minScale     = flag.Float64("min-scale-speedup", 2.0, "absolute floor for the 4-worker pipeline speedup on machines with GOMAXPROCS >= 4")
	)
	flag.Parse()
	if *freshPath == "" {
		return fmt.Errorf("-fresh is required (run `benchtables -table %s -benchout <file>` first)", *table)
	}
	if *baselinePath == "" {
		*baselinePath = "BENCH_" + *table + ".json"
	}
	if *table == "inference" {
		return gateInference(*baselinePath, *freshPath, *tolerance, *minInfer)
	}
	if *table == "cache" {
		return gateCache(*baselinePath, *freshPath, *tolerance, *minCache)
	}
	if *table == "pipeline" {
		return gatePipeline(*baselinePath, *freshPath, *tolerance, *minScale)
	}
	if *table != "hotpath" {
		return fmt.Errorf("-table must be hotpath, inference, cache or pipeline, got %q", *table)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	fmt.Printf("hot-path gate: baseline %s, fresh %s (tolerance %.0f%%)\n",
		*baselinePath, *freshPath, 100**tolerance)
	fmt.Printf("  packet speedup: baseline %.2fx, fresh %.2fx\n", baseline.PacketSpeedup, fresh.PacketSpeedup)
	fmt.Printf("  flow speedup:   baseline %.2fx, fresh %.2fx\n", baseline.FlowSpeedup, fresh.FlowSpeedup)

	var failures []string
	if fresh.FlowSpeedup < *minFlow {
		failures = append(failures, fmt.Sprintf(
			"NetFlow replay speedup %.2fx below the %.1fx floor — the weighted-update collapse is broken",
			fresh.FlowSpeedup, *minFlow))
	}
	if fresh.PacketSpeedup < 1.0 {
		failures = append(failures, fmt.Sprintf(
			"fused per-packet path is slower than legacy (%.2fx)", fresh.PacketSpeedup))
	}
	check := func(name string, base, got float64) {
		if floor := base * (1 - *tolerance); got < floor {
			failures = append(failures, fmt.Sprintf(
				"%s speedup regressed: %.2fx vs baseline %.2fx (floor %.2fx)", name, got, base, floor))
		}
	}
	check("packet", baseline.PacketSpeedup, fresh.PacketSpeedup)
	check("flow", baseline.FlowSpeedup, fresh.FlowSpeedup)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	fmt.Println("  PASS")
	return nil
}

// gateInference enforces the inference-engine contract over the
// BENCH_inference.json shape.
func gateInference(baselinePath, freshPath string, tolerance, minSpeedup float64) error {
	baseline, err := loadInference(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := loadInference(freshPath)
	if err != nil {
		return err
	}
	fmt.Printf("inference gate: baseline %s, fresh %s (tolerance %.0f%%)\n",
		baselinePath, freshPath, 100*tolerance)
	fmt.Printf("  decode speedup: baseline %.1fx, fresh %.1fx\n", baseline.SpeedupRatio, fresh.SpeedupRatio)
	fmt.Printf("  recall: reverse %.3f, invertible %.3f\n", fresh.ReverseRecall, fresh.InvertibleRecall)

	var failures []string
	if fresh.SpeedupRatio < minSpeedup {
		failures = append(failures, fmt.Sprintf(
			"invertible decode speedup %.1fx below the %.1fx floor — the O(buckets) advantage is gone",
			fresh.SpeedupRatio, minSpeedup))
	}
	if floor := baseline.SpeedupRatio * (1 - tolerance); fresh.SpeedupRatio < floor {
		failures = append(failures, fmt.Sprintf(
			"decode speedup regressed: %.1fx vs baseline %.1fx (floor %.1fx)",
			fresh.SpeedupRatio, baseline.SpeedupRatio, floor))
	}
	if fresh.InvertibleRecall < fresh.ReverseRecall {
		failures = append(failures, fmt.Sprintf(
			"invertible recall %.3f below the reverse witness %.3f — the decode is losing true offender keys",
			fresh.InvertibleRecall, fresh.ReverseRecall))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	fmt.Println("  PASS")
	return nil
}

// gateCache enforces the flow-cache contract over the BENCH_cache.json
// shape.
func gateCache(baselinePath, freshPath string, tolerance, minSpeedup float64) error {
	baseline, err := loadCache(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := loadCache(freshPath)
	if err != nil {
		return err
	}
	fmt.Printf("cache gate: baseline %s, fresh %s (tolerance %.0f%%)\n",
		baselinePath, freshPath, 100*tolerance)
	fmt.Printf("  packet speedup: baseline %.2fx, fresh %.2fx (hit ratio %.1f%%)\n",
		baseline.PacketSpeedup, fresh.PacketSpeedup, 100*fresh.HitRatio)
	fmt.Printf("  flow speedup:   baseline %.2fx, fresh %.2fx\n", baseline.FlowSpeedup, fresh.FlowSpeedup)

	var failures []string
	if !fresh.StateIdentical {
		failures = append(failures,
			"cached recorder state diverged from the cache-less witness — the measurement is void")
	}
	if fresh.PacketSpeedup < minSpeedup {
		failures = append(failures, fmt.Sprintf(
			"cached packet speedup %.2fx below the %.1fx floor on Zipf traffic — the probe shortcut is broken",
			fresh.PacketSpeedup, minSpeedup))
	}
	if fresh.FlowSpeedup < 1.0 {
		failures = append(failures, fmt.Sprintf(
			"cached NetFlow replay is slower than the bare engine (%.2fx)", fresh.FlowSpeedup))
	}
	check := func(name string, base, got float64) {
		if floor := base * (1 - tolerance); got < floor {
			failures = append(failures, fmt.Sprintf(
				"%s speedup regressed: %.2fx vs baseline %.2fx (floor %.2fx)", name, got, base, floor))
		}
	}
	check("packet", baseline.PacketSpeedup, fresh.PacketSpeedup)
	check("flow", baseline.FlowSpeedup, fresh.FlowSpeedup)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	fmt.Println("  PASS")
	return nil
}

// gatePipeline enforces the multi-worker scaling contract over the
// BENCH_pipeline.json shape. Speedups are engine-vs-sequential ratios
// measured in one process, so the gate is machine-speed independent;
// the SCALING checks additionally need real cores, so they arm only
// when the fresh run had GOMAXPROCS >= 4.
func gatePipeline(baselinePath, freshPath string, tolerance, minScale float64) error {
	baseline, err := loadPipeline(baselinePath)
	if err != nil {
		return err
	}
	fresh, err := loadPipeline(freshPath)
	if err != nil {
		return err
	}
	fmt.Printf("pipeline gate: baseline %s, fresh %s (tolerance %.0f%%)\n",
		baselinePath, freshPath, 100*tolerance)
	for _, p := range fresh.Points {
		fmt.Printf("  %d worker(s): %.2fx vs sequential\n", p.Workers, p.Speedup)
	}

	var failures []string
	if fresh.GoMaxProcs >= 4 {
		prev := 0.0
		prevWorkers := 0
		for _, p := range fresh.Points {
			if p.Workers == 4 && p.Speedup < minScale {
				failures = append(failures, fmt.Sprintf(
					"4-worker speedup %.2fx below the %.1fx floor on a %d-way machine — sharding is not scaling",
					p.Speedup, minScale, fresh.GoMaxProcs))
			}
			// Monotone curve up to the machine's parallelism: more
			// workers must never cost throughput (beyond tolerance)
			// while real cores remain to run them.
			if p.Workers <= fresh.GoMaxProcs && prevWorkers > 0 {
				if floor := prev * (1 - tolerance); p.Speedup < floor {
					failures = append(failures, fmt.Sprintf(
						"speedup curve not monotone: %d workers %.2fx < %d workers %.2fx (floor %.2fx)",
						p.Workers, p.Speedup, prevWorkers, prev, floor))
				}
			}
			if p.Workers <= fresh.GoMaxProcs {
				prev, prevWorkers = p.Speedup, p.Workers
			}
		}
	} else {
		fmt.Printf("  note: fresh run had GOMAXPROCS %d < 4; scaling floors skipped (regression checks still apply)\n",
			fresh.GoMaxProcs)
	}

	// Per-point regression against the committed baseline, regardless
	// of core count: engine overhead must not silently grow.
	base := make(map[int]float64, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.Workers] = p.Speedup
	}
	for _, p := range fresh.Points {
		b, ok := base[p.Workers]
		if !ok {
			continue
		}
		if floor := b * (1 - tolerance); p.Speedup < floor {
			failures = append(failures, fmt.Sprintf(
				"%d-worker speedup regressed: %.2fx vs baseline %.2fx (floor %.2fx)",
				p.Workers, p.Speedup, b, floor))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	fmt.Println("  PASS")
	return nil
}

func loadPipeline(path string) (experiments.PipelineBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return experiments.PipelineBench{}, err
	}
	var b experiments.PipelineBench
	if err := json.Unmarshal(data, &b); err != nil {
		return experiments.PipelineBench{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.SequentialPPS <= 0 || len(b.Points) == 0 {
		return experiments.PipelineBench{}, fmt.Errorf("%s: not a pipeline benchmark (no sequential rate or points)", path)
	}
	return b, nil
}

func loadCache(path string) (experiments.CacheBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return experiments.CacheBench{}, err
	}
	var b experiments.CacheBench
	if err := json.Unmarshal(data, &b); err != nil {
		return experiments.CacheBench{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.UncachedPacketPPS <= 0 || b.UncachedFlowRPS <= 0 {
		return experiments.CacheBench{}, fmt.Errorf("%s: not a cache benchmark (zero uncached rates)", path)
	}
	return b, nil
}

func loadInference(path string) (experiments.InferenceBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return experiments.InferenceBench{}, err
	}
	var b experiments.InferenceBench
	if err := json.Unmarshal(data, &b); err != nil {
		return experiments.InferenceBench{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.ReverseDecodeSec <= 0 || b.InvertibleDecodeSec <= 0 {
		return experiments.InferenceBench{}, fmt.Errorf("%s: not an inference benchmark (zero latencies)", path)
	}
	return b, nil
}

func load(path string) (experiments.HotpathBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return experiments.HotpathBench{}, err
	}
	var b experiments.HotpathBench
	if err := json.Unmarshal(data, &b); err != nil {
		return experiments.HotpathBench{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.LegacyPacketPPS <= 0 || b.LegacyFlowRPS <= 0 {
		return experiments.HotpathBench{}, fmt.Errorf("%s: not a hotpath benchmark (zero legacy rates)", path)
	}
	return b, nil
}
