// Command benchgate enforces the hot-path performance contract: it
// compares a freshly measured engine comparison (the BENCH_hotpath.json
// shape written by `benchtables -table hotpath`) against the committed
// baseline and exits non-zero on regression.
//
// The gate judges speedups — fused/legacy ratios measured back to back
// in one process — never absolute packets/sec, so a slower CI machine
// cannot fail the gate and a faster one cannot mask a regression. Three
// rules:
//
//  1. FlowSpeedup ≥ -min-flow-speedup (default 2.0): the weighted-update
//     collapse of NetFlow replay must survive; this is the floor the
//     fused engine exists to clear, not a relative check.
//  2. PacketSpeedup ≥ 1.0: the fused engine must never be slower than
//     legacy on the per-packet path.
//  3. Each fresh speedup ≥ (1 - tolerance) × baseline speedup (default
//     tolerance 10%): the margin recorded in the committed JSON must not
//     silently erode.
//
//	benchgate -baseline BENCH_hotpath.json -fresh /tmp/fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/hifind/hifind/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_hotpath.json", "committed baseline JSON")
		freshPath    = flag.String("fresh", "", "freshly measured JSON (required)")
		tolerance    = flag.Float64("tolerance", 0.10, "allowed fractional speedup regression vs baseline")
		minFlow      = flag.Float64("min-flow-speedup", 2.0, "absolute floor for the NetFlow replay speedup")
	)
	flag.Parse()
	if *freshPath == "" {
		return fmt.Errorf("-fresh is required (run `benchtables -table hotpath -benchout <file>` first)")
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	fmt.Printf("hot-path gate: baseline %s, fresh %s (tolerance %.0f%%)\n",
		*baselinePath, *freshPath, 100**tolerance)
	fmt.Printf("  packet speedup: baseline %.2fx, fresh %.2fx\n", baseline.PacketSpeedup, fresh.PacketSpeedup)
	fmt.Printf("  flow speedup:   baseline %.2fx, fresh %.2fx\n", baseline.FlowSpeedup, fresh.FlowSpeedup)

	var failures []string
	if fresh.FlowSpeedup < *minFlow {
		failures = append(failures, fmt.Sprintf(
			"NetFlow replay speedup %.2fx below the %.1fx floor — the weighted-update collapse is broken",
			fresh.FlowSpeedup, *minFlow))
	}
	if fresh.PacketSpeedup < 1.0 {
		failures = append(failures, fmt.Sprintf(
			"fused per-packet path is slower than legacy (%.2fx)", fresh.PacketSpeedup))
	}
	check := func(name string, base, got float64) {
		if floor := base * (1 - *tolerance); got < floor {
			failures = append(failures, fmt.Sprintf(
				"%s speedup regressed: %.2fx vs baseline %.2fx (floor %.2fx)", name, got, base, floor))
		}
	}
	check("packet", baseline.PacketSpeedup, fresh.PacketSpeedup)
	check("flow", baseline.FlowSpeedup, fresh.FlowSpeedup)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	fmt.Println("  PASS")
	return nil
}

func load(path string) (experiments.HotpathBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return experiments.HotpathBench{}, err
	}
	var b experiments.HotpathBench
	if err := json.Unmarshal(data, &b); err != nil {
		return experiments.HotpathBench{}, fmt.Errorf("%s: %w", path, err)
	}
	if b.LegacyPacketPPS <= 0 || b.LegacyFlowRPS <= 0 {
		return experiments.HotpathBench{}, fmt.Errorf("%s: not a hotpath benchmark (zero legacy rates)", path)
	}
	return b, nil
}
