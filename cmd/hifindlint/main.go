// Command hifindlint runs the repo's custom static-analysis rules
// (internal/analyze) over the module as one program: the call graph is
// built across every package, so hot-path classification and
// determinism reachability propagate through cross-package calls even
// when only a subset of packages is selected for reporting.
//
// Usage:
//
//	hifindlint [-rules list] [-json] [-audit] [-selfcheck] [-list] [packages]
//
// With no package arguments (or "./...") findings for the whole module
// are reported. Findings print as file:line:col: rule: message, sorted
// by position, and the exit status is 1 when any survive. Suppress an
// individual finding by putting
//
//	//lint:ignore <RuleID> reason
//
// on the flagged line or the line above it; the reason is mandatory.
//
// Flags:
//
//	-rules a,b,c   run only the named rules (default: all)
//	-json          emit findings as a JSON array instead of text
//	-audit         also report //lint:ignore directives that suppress
//	               nothing (rule unused-suppression) and fail on them
//	-selfcheck     verify the analyzers against their own golden
//	               testdata (internal/analyze/testdata) and exit
//	-list          list the available rules and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/hifind/hifind/internal/analyze"
)

func main() {
	var (
		rules     = flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON")
		audit     = flag.Bool("audit", false, "also fail on unused //lint:ignore directives")
		selfcheck = flag.Bool("selfcheck", false, "verify the rules against their golden testdata and exit")
		list      = flag.Bool("list", false, "list the available rules and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hifindlint [-rules list] [-json] [-audit] [-selfcheck] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyze.Analyzers() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analyze.SelectAnalyzers(*rules)
	if err != nil {
		fatal(err)
	}
	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	mod, err := analyze.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	if *selfcheck {
		runSelfcheck(mod, root)
		return
	}

	selected, err := selectPackages(mod, flag.Args())
	if err != nil {
		fatal(err)
	}

	// The program is always the whole module — cross-package facts
	// (transitive hotness, atomic sites) need every package — and the
	// package selection only filters what gets reported.
	pkgs := make([]*analyze.Package, 0, len(mod.Packages()))
	for _, path := range mod.Packages() {
		pkg, err := mod.Load(path)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	res := analyze.RunProgram(analyze.NewProgram(pkgs), analyzers)

	report := filterByPackage(res.Findings, selected)
	if *audit {
		report = append(report, filterByPackage(res.Unused, selected)...)
	}
	for i := range report {
		if rel, err := filepath.Rel(root, report[i].Pos.Filename); err == nil {
			report[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		printJSON(report)
	} else {
		for _, f := range report {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "hifindlint: %d packages, %d rules, %d findings\n",
			len(selected), len(analyzers), len(report))
	}
	if len(report) > 0 {
		os.Exit(1)
	}
}

// runSelfcheck verifies the analyzers against the golden testdata they
// ship with: every want comment must still match, every finding must
// still be wanted. A rule change without a testdata change fails here.
func runSelfcheck(mod *analyze.Module, root string) {
	testdata := filepath.Join(root, "internal", "analyze", "testdata")
	problems, err := analyze.SelfCheck(mod, testdata)
	if err != nil {
		fatal(err)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "hifindlint: selfcheck %s: %d problems\n", testdata, len(problems))
	if len(problems) > 0 {
		os.Exit(1)
	}
}

// filterByPackage keeps the findings reported in one of the selected
// packages. Findings are already position-sorted and filtering is
// stable, so the output order survives.
func filterByPackage(findings []analyze.Finding, selected []string) []analyze.Finding {
	want := make(map[string]bool, len(selected))
	for _, p := range selected {
		want[p] = true
	}
	out := make([]analyze.Finding, 0, len(findings))
	for _, f := range findings {
		if want[f.Pkg] {
			out = append(out, f)
		}
	}
	return out
}

// jsonFinding is the -json output shape, one object per finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Package string `json:"package"`
}

func printJSON(findings []analyze.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    f.Pos.Filename,
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
			Package: f.Pkg,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hifindlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages resolves command-line patterns to module import paths.
// Supported: no args or "./..." (everything), "dir/..." (subtree), and
// plain directory paths relative to the module root.
func selectPackages(mod *analyze.Module, args []string) ([]string, error) {
	all := mod.Packages()
	if len(args) == 0 {
		return all, nil
	}
	var out []string
	seen := make(map[string]bool)
	for _, arg := range args {
		clean := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		matched := false
		for _, path := range all {
			rel := strings.TrimPrefix(strings.TrimPrefix(path, mod.Path), "/")
			ok := false
			switch {
			case clean == "..." || clean == "":
				ok = true
			case strings.HasSuffix(clean, "/..."):
				prefix := strings.TrimSuffix(clean, "/...")
				ok = rel == prefix || strings.HasPrefix(rel, prefix+"/")
			default:
				ok = rel == clean
			}
			if ok && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("hifindlint: pattern %q matches no packages", arg)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
