// Command hifindlint runs the repo's custom static-analysis rules
// (internal/analyze) over the module: alloc-free sketch hot paths,
// deterministic seeding, float-comparison hygiene, mutex copy/guard
// discipline, and checked Close/Flush/Write at the I/O boundaries.
//
// Usage:
//
//	hifindlint [-rules] [packages]
//
// With no arguments (or "./...") the whole module is analyzed. Findings
// print as file:line:col: rule: message and the exit status is 1 when
// any survive. Suppress an individual finding by putting
//
//	//lint:ignore <RuleID> reason
//
// on the flagged line or the line above it; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/hifind/hifind/internal/analyze"
)

func main() {
	rules := flag.Bool("rules", false, "list the available rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hifindlint [-rules] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analyze.Analyzers()
	if *rules {
		for _, a := range analyzers {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	mod, err := analyze.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	paths, err := selectPackages(mod, flag.Args())
	if err != nil {
		fatal(err)
	}

	var findings []analyze.Finding
	for _, path := range paths {
		pkg, err := mod.Load(path)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, analyze.RunPackage(pkg, analyzers)...)
	}
	for _, f := range findings {
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	fmt.Fprintf(os.Stderr, "hifindlint: %d packages, %d rules, %d findings\n",
		len(paths), len(analyzers), len(findings))
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("hifindlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages resolves command-line patterns to module import paths.
// Supported: no args or "./..." (everything), "dir/..." (subtree), and
// plain directory paths relative to the module root.
func selectPackages(mod *analyze.Module, args []string) ([]string, error) {
	all := mod.Packages()
	if len(args) == 0 {
		return all, nil
	}
	var out []string
	seen := make(map[string]bool)
	for _, arg := range args {
		clean := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		matched := false
		for _, path := range all {
			rel := strings.TrimPrefix(strings.TrimPrefix(path, mod.Path), "/")
			ok := false
			switch {
			case clean == "..." || clean == "":
				ok = true
			case strings.HasSuffix(clean, "/..."):
				prefix := strings.TrimSuffix(clean, "/...")
				ok = rel == prefix || strings.HasPrefix(rel, prefix+"/")
			default:
				ok = rel == clean
			}
			if ok && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("hifindlint: pattern %q matches no packages", arg)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
