// Multi-router aggregation modes: -collect runs the central aggregation
// site, -report runs one edge router shipping its per-interval sketch
// state. Together they put the fault-tolerant aggregation path (frame
// codec, reconnecting reporters, partial intervals) behind the CLI so
// the smoke test — and a curious operator — can run a multi-process
// deployment on one machine:
//
//	hifind -collect 127.0.0.1:7400 -routers 3 -epochs 6 -compact
//	hifind -report 127.0.0.1:7400 -router 0 -of 3 -pcap t.pcap -edge 129.105.0.0/16 -epochs 6 -compact
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/hifind/hifind/internal/aggregate"
	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/pcap"
	"github.com/hifind/hifind/internal/telemetry"
)

// sketchSeed must match across every reporter and the collector — merged
// sketches are only meaningful over identical hash functions. It is the
// facade's default seed.
const sketchSeed = 0x48694649

// aggregateFlags holds the multi-router mode flags, registered alongside
// the main flag set.
type aggregateFlags struct {
	collect    string
	report     string
	routers    int
	routerID   int
	routerOf   int
	epochs     int
	startEpoch int
	pace       time.Duration
	deadline   time.Duration
}

func registerAggregateFlags() *aggregateFlags {
	af := &aggregateFlags{}
	flag.StringVar(&af.collect, "collect", "", "run the aggregation collector, listening for router reports on this address")
	flag.StringVar(&af.report, "report", "", "run as an edge-router reporter, shipping interval state to this collector address")
	flag.IntVar(&af.routers, "routers", 3, "(-collect) number of routers expected per interval")
	flag.IntVar(&af.routerID, "router", 0, "(-report) this router's id")
	flag.IntVar(&af.routerOf, "of", 3, "(-report) total routers in the split — selects this router's share of the capture")
	flag.IntVar(&af.epochs, "epochs", 6, "how many interval epochs to run")
	flag.IntVar(&af.startEpoch, "start-epoch", 0, "(-report) first epoch to report (a restarted router skips what it missed)")
	flag.DurationVar(&af.pace, "pace", 0, "(-report) real-time delay between epoch reports (0 = as fast as possible)")
	flag.DurationVar(&af.deadline, "deadline", 10*time.Second, "(-collect) per-epoch merge deadline before closing the interval partial")
	return af
}

// aggregateRecorderConfig mirrors the facade's sketch-size choice.
func aggregateRecorderConfig(compact bool) core.RecorderConfig {
	if compact {
		return core.TestRecorderConfig(sketchSeed)
	}
	return core.PaperRecorderConfig(sketchSeed)
}

// runCollect is the central site: accept router connections, merge one
// epoch at a time (closing partial at the deadline), detect on the
// merged state, and report per-epoch outcomes on stdout.
func runCollect(ctx context.Context, af *aggregateFlags, compact bool,
	threshold float64, interval time.Duration, alpha float64,
	reg *telemetry.Registry, health *telemetry.Health) error {
	rcfg := aggregateRecorderConfig(compact)
	collector, err := aggregate.NewCollector(rcfg, af.routers, af.collect,
		aggregate.WithTelemetry(reg))
	if err != nil {
		return err
	}
	defer collector.Close()
	health.Register("aggregate", func() error { return nil })
	det, err := core.NewDetector(rcfg, core.DetectorConfig{
		Threshold: threshold * interval.Seconds(),
		Alpha:     alpha,
	})
	if err != nil {
		return err
	}
	fmt.Printf("collecting from %d routers on %s, %d epochs, deadline %v\n",
		af.routers, collector.Addr(), af.epochs, af.deadline)

	// The context closes collection early on SIGINT: stop feeds every
	// pending CollectEpoch deadline.
	stop := make(chan time.Time)
	go func() {
		<-ctx.Done()
		close(stop)
	}()
	for e := 0; e < af.epochs; e++ {
		timer := time.NewTimer(af.deadline)
		deadline := make(chan time.Time, 1)
		done := make(chan struct{})
		go func() {
			defer timer.Stop()
			select {
			case tm := <-timer.C:
				deadline <- tm
			case <-stop:
				deadline <- time.Time{}
			case <-done:
			}
		}()
		merged, info, err := collector.CollectEpoch(uint64(e), deadline)
		close(done)
		if err != nil {
			if errors.Is(err, aggregate.ErrNoFrames) {
				fmt.Printf("epoch %d: 0/%d routers, interval lost\n", e, af.routers)
				if ctx.Err() != nil {
					break
				}
				continue
			}
			return err
		}
		res, err := det.EndIntervalWithPartial(merged, info.Partial)
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d: %d/%d routers, partial=%v, %d alerts\n",
			e, len(info.Contributors), af.routers, info.Partial, len(res.Final))
		for _, a := range res.Final {
			flag := ""
			if a.Partial {
				flag = " [partial]"
			}
			fmt.Printf("  ALERT%s %s\n", flag, a)
		}
		if ctx.Err() != nil {
			break
		}
	}
	if err := collector.Close(); err != nil {
		return err
	}
	fmt.Printf("collector done: reconnects=%d partial_intervals=%d corrupt_frames=%d stale_frames=%d\n",
		reg.Counter("aggregate_reconnects_total", "").Value(),
		reg.Counter("aggregate_partial_intervals_total", "").Value(),
		reg.Counter("aggregate_corrupt_frames_total", "").Value(),
		reg.Counter("aggregate_stale_frames_total", "").Value())
	return nil
}

// runReport is one edge router: replay this router's share of the
// capture (per-packet load-balanced split, deterministic across
// processes), end an interval per epoch, and ship the serialized state.
// A restarted router passes -start-epoch to skip the epochs it missed;
// the hello handshake prunes anything the collector has already closed.
func runReport(ctx context.Context, af *aggregateFlags, pcapPath string,
	edgeCIDRs []string, compact bool, interval time.Duration,
	reg *telemetry.Registry) error {
	if pcapPath == "" {
		return fmt.Errorf("-report requires -pcap")
	}
	if af.routerID < 0 || af.routerID >= af.routerOf {
		return fmt.Errorf("-router %d out of range for -of %d", af.routerID, af.routerOf)
	}
	rcfg := aggregateRecorderConfig(compact)
	edge, err := netmodel.NewEdgeNetwork(edgeCIDRs...)
	if err != nil {
		return err
	}
	f, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	pr, err := pcap.NewReader(f, edge)
	if err != nil {
		return err
	}
	// Same splitter seed in every reporter process: packet k goes to the
	// same router everywhere, so the shares partition the capture.
	split, err := aggregate.NewSplitter(af.routerOf, sketchSeed)
	if err != nil {
		return err
	}
	rec, err := core.NewRecorder(rcfg)
	if err != nil {
		return err
	}
	rep := aggregate.NewReporter(uint32(af.routerID), af.report,
		aggregate.WithReporterTelemetry(reg))
	defer rep.Close()

	// Epoch boundaries come from capture timestamps, like replay mode.
	var intervalStart time.Time
	epoch := 0
	flush := func() error {
		if epoch >= af.startEpoch {
			if err := rep.Report(uint64(epoch), rec); err != nil {
				return err
			}
			fmt.Printf("router %d: reported epoch %d\n", af.routerID, epoch)
			if af.pace > 0 {
				select {
				case <-time.After(af.pace):
				case <-ctx.Done():
				}
			}
		}
		rec.Reset()
		epoch++
		return nil
	}
	for epoch < af.epochs {
		pkt, err := pr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if intervalStart.IsZero() {
			intervalStart = pkt.Timestamp
		}
		for !pkt.Timestamp.Before(intervalStart.Add(interval)) {
			if err := flush(); err != nil {
				return err
			}
			intervalStart = intervalStart.Add(interval)
			if epoch >= af.epochs {
				break
			}
		}
		if epoch >= af.epochs || ctx.Err() != nil {
			break
		}
		if split.Route(pkt) == af.routerID {
			rec.Observe(pkt)
		}
	}
	// Flush the trailing partial interval.
	if epoch < af.epochs && ctx.Err() == nil {
		if err := flush(); err != nil {
			return err
		}
	}
	// Linger until the spill drains (bounded by context) so a fast replay
	// does not abandon its last reports.
	for rep.Pending() > 0 && ctx.Err() == nil {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("router %d done: sent=%d reconnects=%d dropped=%d\n",
		af.routerID, rep.Sent(), rep.Reconnects(), rep.SpillDropped()+rep.StaleDropped())
	return nil
}

// runAggregateMode dispatches -collect/-report; returns false when
// neither mode is requested.
func runAggregateMode(ctx context.Context, af *aggregateFlags, pcapPath string,
	edge string, compact bool, threshold float64, interval time.Duration, alpha float64,
	reg *telemetry.Registry, health *telemetry.Health) (bool, error) {
	switch {
	case af.collect != "":
		return true, runCollect(ctx, af, compact, threshold, interval, alpha, reg, health)
	case af.report != "":
		return true, runReport(ctx, af, pcapPath, strings.Split(edge, ","), compact, interval, reg)
	}
	return false, nil
}
