// Command hifind runs the HiFIND detector over a libpcap capture or a
// NetFlow v5 export file and prints the alerts of every detection
// interval.
//
//	hifind -pcap trace.pcap -edge 129.105.0.0/16
//	hifind -netflow trace.nf5 -edge 129.105.0.0/16
//	hifind -listen 127.0.0.1:2055 -edge 129.105.0.0/16   # live UDP NetFlow
//	hifind -pcap trace.pcap -edge 10.0.0.0/8 -threshold 2 -phases
//	hifind -pcap trace.pcap -edge 10.0.0.0/8 -http :9090 -linger
//
// The capture's own timestamps drive the measurement intervals (one
// minute by default), so a day-long capture yields 1440 detection rounds
// exactly as the paper's on-site experiment did.
//
// With -http the process serves /metrics (Prometheus text), /healthz,
// /livez, /debug/vars and /debug/pprof on the given address. With -json
// detection results are emitted as NDJSON events on stdout instead of
// the human-readable lines. SIGINT/SIGTERM shut down gracefully: the
// partial final interval is flushed through detection and the capture
// or NetFlow source is closed cleanly.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/netflow"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/telemetry"
)

// detector is the shape both hifind.Detector and hifind.Parallel offer;
// the -workers flag picks which one backs it.
type detector interface {
	hifind.Replayable
	ObserveFlow(hifind.Flow)
	SaveState() ([]byte, error)
	LoadState([]byte) error
	MemoryBytes() int
	InferenceEngine() string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hifind:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		pcapPath  = flag.String("pcap", "", "libpcap capture to analyze")
		nfPath    = flag.String("netflow", "", "length-delimited NetFlow v5 export file to analyze")
		listen    = flag.String("listen", "", "UDP address to receive live NetFlow v5 exports on (runs until interrupted)")
		edge      = flag.String("edge", "", "comma-separated CIDRs of the monitored network (required)")
		interval  = flag.Duration("interval", time.Minute, "measurement interval")
		threshold = flag.Float64("threshold", 1, "detection threshold in unresponded SYNs per second")
		alpha     = flag.Float64("alpha", 0.5, "EWMA smoothing constant")
		compact   = flag.Bool("compact", false, "use compact (≈1.5MB) sketches instead of the paper's 13.2MB set")
		inference = flag.String("inference", "reverse", "offender-key recovery engine: reverse (reverse-hashing search) or invertible (O(buckets) sketch decode)")
		phases    = flag.Bool("phases", false, "print raw and after-classification alerts too")
		statePath = flag.String("state", "", "checkpoint file: loaded at start if present, saved after every interval (live mode)")
		workers   = flag.Int("workers", 0, "shard sketch recording across N parallel workers (0 = sequential)")
		httpAddr  = flag.String("http", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (e.g. :9090)")
		jsonOut   = flag.Bool("json", false, "emit alerts and interval summaries as NDJSON on stdout")
		linger    = flag.Bool("linger", false, "after an offline replay, keep the -http endpoints up until interrupted")
		flowQueue = flag.Int("flow-queue", 1024, "live mode: capacity of the collector→detector flow queue (flows are dropped, not blocked on, when it is full)")
		flowCache  = flag.Int("flowcache", 0, "entries of the exact flow-aggregation cache in front of the sketches (0 = disabled); state and alerts stay byte-identical, skewed traffic records faster")
		burstSlots = flag.Int("burst-slots", 0, "cut each interval into N sub-interval windows and alert on single-window SYN pulses that stay under the interval threshold (0 = off)")
		persist    = flag.Bool("persist", false, "detect persistent-and-sparse flows: sources probing below the per-interval threshold interval after interval")
		reflection = flag.Bool("reflection", false, "detect reflection floods: unsolicited inbound SYN/ACK backscatter with no matching outbound SYNs")
	)
	af := registerAggregateFlags()
	flag.Parse()

	// Multi-router aggregation modes run their own loop: -collect is the
	// central merge-and-detect site, -report an edge router shipping its
	// sketch state. Neither uses the single-process replay path below.
	if af.collect != "" || af.report != "" {
		if af.report != "" && (*pcapPath == "" || *edge == "") {
			return fmt.Errorf("-report requires -pcap and -edge")
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		reg := telemetry.NewRegistry()
		health := telemetry.NewHealth()
		if *httpAddr != "" {
			srv, err := telemetry.Serve(*httpAddr, reg, health)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", srv.Addr())
		}
		_, err := runAggregateMode(ctx, af, *pcapPath, *edge, *compact, *threshold, *interval, *alpha, reg, health)
		return err
	}

	inputs := 0
	for _, v := range []string{*pcapPath, *nfPath, *listen} {
		if v != "" {
			inputs++
		}
	}
	if inputs != 1 || *edge == "" {
		flag.Usage()
		return fmt.Errorf("exactly one of -pcap/-netflow/-listen plus -edge are required")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []hifind.Option{
		hifind.WithInterval(*interval),
		hifind.WithThresholdPerSecond(*threshold),
		hifind.WithAlpha(*alpha),
	}
	if *compact {
		opts = append(opts, hifind.WithCompactSketches())
	}
	switch *inference {
	case "reverse":
	case "invertible":
		opts = append(opts, hifind.WithInvertibleInference())
	default:
		return fmt.Errorf("-inference must be reverse or invertible, got %q", *inference)
	}
	if *flowCache > 0 {
		opts = append(opts, hifind.WithFlowCache(*flowCache))
	}
	if *burstSlots > 0 {
		opts = append(opts, hifind.WithBurstDetection(*burstSlots))
	}
	if *persist {
		opts = append(opts, hifind.WithPersistentFlowDetection())
	}
	if *reflection {
		opts = append(opts, hifind.WithReflectionDetection())
	}
	reg := telemetry.NewRegistry()
	health := telemetry.NewHealth()
	opts = append(opts, hifind.WithTelemetry(reg))
	var sink *telemetry.JSONSink
	if *jsonOut {
		sink = telemetry.NewJSONSink(os.Stdout)
		opts = append(opts, hifind.WithAlertSink(sink))
	}
	// det is the sequential or sharded engine behind one detector shape;
	// both satisfy hifind.Replayable and the live-mode interface.
	var det detector
	if *workers > 0 {
		popts := append(opts, hifind.WithWorkers(*workers))
		if *listen != "" {
			// Live capture must never stall the socket reader; count
			// overload drops instead (mirrors the collector's own policy).
			popts = append(popts, hifind.WithShedOnOverload())
		}
		par, err := hifind.NewParallel(popts...)
		if err != nil {
			return err
		}
		det = par
	} else {
		seq, err := hifind.New(opts...)
		if err != nil {
			return err
		}
		det = seq
	}
	var srv *telemetry.Server
	if *httpAddr != "" {
		var err error
		srv, err = telemetry.Serve(*httpAddr, reg, health)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics\n", srv.Addr())
	}
	if *listen != "" {
		return runLive(ctx, det, *listen, strings.Split(*edge, ","), *interval, *statePath, *flowQueue, reg, health)
	}
	path := *pcapPath
	if path == "" {
		path = *nfPath
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Offline replay has no failure mode a probe could catch before the
	// process exits; the component exists so /healthz names the source.
	health.Register("source", func() error { return nil })

	cacheNote := ""
	if *flowCache > 0 {
		cacheNote = fmt.Sprintf(", %d-entry flow cache", *flowCache)
	}
	fmt.Printf("HiFIND: %0.1f MB of sketches, %v intervals, threshold %.1f SYN/s, %s inference%s\n",
		float64(det.MemoryBytes())/(1<<20), *interval, *threshold, det.InferenceEngine(), cacheNote)
	if sink != nil {
		sink.Emit(telemetry.Event{Time: time.Now(), Kind: "startup", Fields: map[string]any{
			"inference_engine":   det.InferenceEngine(),
			"memory_bytes":       det.MemoryBytes(),
			"interval_seconds":   interval.Seconds(),
			"flow_cache_entries": *flowCache,
		}})
	}
	in := bufio.NewReaderSize(f, 1<<20)
	var results []hifind.Result
	if *pcapPath != "" {
		results, err = hifind.ReplayPcapContext(ctx, in, strings.Split(*edge, ","), det)
	} else {
		results, err = hifind.ReplayNetFlowContext(ctx, in, strings.Split(*edge, ","), det)
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		return err
	}
	totalFinal := 0
	for _, res := range results {
		if *phases && !*jsonOut {
			for _, a := range res.Raw {
				fmt.Printf("interval %3d [raw]      %s\n", res.Interval, a)
			}
			for _, a := range res.AfterClassification {
				fmt.Printf("interval %3d [after-2D] %s\n", res.Interval, a)
			}
		}
		for _, a := range res.Final {
			if !*jsonOut {
				fmt.Printf("interval %3d ALERT %s\n", res.Interval, a)
			}
			totalFinal++
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "interrupted: partial final interval flushed")
	}
	fmt.Printf("%d intervals analyzed, %d final alerts\n", len(results), totalFinal)
	if *linger && srv != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "replay done; serving telemetry until interrupted")
		<-ctx.Done()
	}
	return nil
}

// runLive receives NetFlow v5 over UDP and detects on wall-clock
// intervals until the process is interrupted. The collector goroutine
// forwards decoded flows over a channel so the detector stays
// single-threaded. On SIGINT/SIGTERM the final partial interval is
// flushed through detection before the source closes.
func runLive(ctx context.Context, det detector, addr string, edgeCIDRs []string,
	interval time.Duration, statePath string, flowQueue int, reg *telemetry.Registry, health *telemetry.Health) error {
	edge, err := netmodel.NewEdgeNetwork(edgeCIDRs...)
	if err != nil {
		return err
	}
	if statePath != "" {
		if data, err := os.ReadFile(statePath); err == nil {
			if err := det.LoadState(data); err != nil {
				return fmt.Errorf("load state %s: %w", statePath, err)
			}
			fmt.Printf("resumed from %s\n", statePath)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	if flowQueue < 1 {
		return fmt.Errorf("-flow-queue must be at least 1, got %d", flowQueue)
	}
	flows := make(chan netmodel.FlowRecord, flowQueue)
	collector, err := netflow.Listen(addr, func(r netflow.Record, hdr netflow.Header) {
		if fr, ok := netflow.ToFlowRecord(r, hdr, edge); ok {
			select {
			case flows <- fr:
			default: // backpressure: drop rather than block the socket
			}
		}
	}, netflow.WithTelemetry(reg))
	if err != nil {
		return err
	}
	defer collector.Close()
	closed := false
	health.Register("collector", func() error {
		if closed {
			return fmt.Errorf("netflow collector closed")
		}
		return nil
	})
	fmt.Printf("listening for NetFlow v5 on %s, %v intervals, %s inference; Ctrl-C to stop\n",
		collector.Addr(), interval, det.InferenceEngine())

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	report := func(res hifind.Result) {
		pkts, recs, malformed := collector.Stats()
		fmt.Printf("interval %d: %d datagrams, %d records, %d malformed, %d alerts\n",
			res.Interval, pkts, recs, malformed, len(res.Final))
		for _, a := range res.Final {
			fmt.Printf("  ALERT %s\n", a)
		}
	}
	for {
		select {
		case fr := <-flows:
			det.ObserveFlow(hifind.Flow{
				SrcIP:   netip.AddrFrom4(fr.SrcIP.Octets()),
				DstIP:   netip.AddrFrom4(fr.DstIP.Octets()),
				SrcPort: fr.SrcPort,
				DstPort: fr.DstPort,
				Dir:     hifind.Direction(fr.Dir),
				SYNs:    fr.SYNs,
				SYNACKs: fr.SYNACKs,
			})
		case <-ticker.C:
			res, err := det.EndInterval()
			if err != nil {
				return err
			}
			report(res)
			if statePath != "" {
				data, err := det.SaveState()
				if err != nil {
					return err
				}
				if err := os.WriteFile(statePath, data, 0o644); err != nil {
					return err
				}
			}
		case <-ctx.Done():
			fmt.Println("\nshutting down")
			// Stop the source first so no flow arrives after the final
			// detection, then flush the partial interval — the tail of
			// the stream is detected, not dropped.
			if err := collector.Close(); err != nil {
				return err
			}
			closed = true
			for {
				select {
				case fr := <-flows:
					det.ObserveFlow(hifind.Flow{
						SrcIP:   netip.AddrFrom4(fr.SrcIP.Octets()),
						DstIP:   netip.AddrFrom4(fr.DstIP.Octets()),
						SrcPort: fr.SrcPort,
						DstPort: fr.DstPort,
						Dir:     hifind.Direction(fr.Dir),
						SYNs:    fr.SYNs,
						SYNACKs: fr.SYNACKs,
					})
					continue
				default:
				}
				break
			}
			res, err := det.EndInterval()
			if err != nil {
				return err
			}
			report(res)
			if par, ok := det.(*hifind.Parallel); ok {
				if _, err := par.Close(); err != nil {
					return err
				}
				if shed := par.Shed(); shed > 0 {
					fmt.Printf("%d events shed under overload\n", shed)
				}
			}
			return nil
		}
	}
}
