// Command benchtables regenerates every table and figure of the paper's
// evaluation section from synthetic traces and prints them in the paper's
// layout (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results).
//
//	benchtables            # all experiments at the quick scale
//	benchtables -table 4   # just Table 4
//	benchtables -full      # larger traces (slower, closer to paper scale)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/hifind/hifind/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table = flag.String("table", "all",
			"which artifact to regenerate: 1, 4, 5, 6, 7, 9, f4, mr, val, ma, perf, pipeline, telemetry, hotpath, cache, inference, mit, ttd, ablation, scenarios or all")
		full     = flag.Bool("full", false, "run at the larger scale")
		benchout = flag.String("benchout", "",
			"write the pipeline/telemetry benchmark results as JSON to this file (default BENCH_telemetry.json for -table telemetry)")
	)
	flag.Parse()
	scale := experiments.QuickScale()
	if *full {
		scale = experiments.FullScale()
	}

	want := func(name string) bool { return *table == "all" || *table == name }
	section := func(title string) { fmt.Printf("\n===== %s =====\n", title) }

	if want("1") {
		section("Table 1 — functionality comparison")
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
	}
	if want("f4") {
		section("Figure 4 — unique-port bi-modality")
		h, err := experiments.Figure4(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure4(h))
	}
	if want("4") {
		section("Table 4 — detection results under three phases")
		d, err := experiments.Table4(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(d))
	}
	if want("5") {
		section("Table 5 — Hscan detection: HiFIND vs TRW")
		rows, err := experiments.Table5(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable5(rows))
	}
	if want("6") {
		section("Table 6 — SYN flooding detection: HiFIND vs CPM")
		rows, err := experiments.Table6(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable6(rows))
	}
	if want("7") {
		section("Tables 7–8 — top/bottom Hscans (NU)")
		top, bottom, err := experiments.Table78(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable78(top, bottom))
	}
	if want("mr") {
		section("§5.3.2 — aggregated detection over three routers")
		res, err := experiments.MultiRouter(scale)
		if err != nil {
			return err
		}
		fmt.Printf("single-router final alerts:     %d\n", res.SingleAlerts)
		fmt.Printf("aggregated (3-way split):       %d (missing: %d)\n",
			res.AggregatedAlerts, res.MissingFromAgg)
		fmt.Printf("TRW single vs per-router union: %d vs %d\n", res.TRWSingle, res.TRWSummed)
	}
	if want("val") {
		section("§5.4 — backscatter validation of detected floods (NU)")
		run, err := experiments.RunAll(experiments.NUTrace(scale))
		if err != nil {
			return err
		}
		v := experiments.Validation(run)
		fmt.Printf("final floods %d, matched by backscatter %d\n", v.FinalFloods, v.BackscatterMatched)
	}
	if want("9") {
		section("Table 9 — memory comparison (worst-case 40-byte spoofed stream)")
		d, err := experiments.Table9(200_000)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable9(d))
	}
	if want("ma") {
		section("§5.5.2 — memory accesses per packet")
		r, err := experiments.MemoryAccesses()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAccesses(r))
	}
	if want("perf") {
		section("§5.5.3 — recording throughput and detection latency")
		tp, err := experiments.Throughput(5_000_000)
		if err != nil {
			return err
		}
		fmt.Printf("reversible sketch: %.1fM insertions/sec ⇒ %.2f Gbps worst-case 40-byte packets\n",
			tp.InsertionsPerSec/1e6, tp.WorstCaseGbps)
		lat, err := experiments.DetectionTime(scale)
		if err != nil {
			return err
		}
		fmt.Printf("detection per interval: mean %.3fs, std %.3fs, max %.3fs over %d intervals\n",
			lat.MeanSec, lat.StdSec, lat.MaxSec, lat.Intervals)
		st, err := experiments.Stress60x(scale)
		if err != nil {
			return err
		}
		fmt.Printf("compressed stress (top-100 anomalies): mean %.3fs, max %.3fs\n",
			st.MeanSec, st.MaxSec)
	}
	if want("pipeline") {
		section("Parallel pipeline — recording throughput vs worker count")
		events := 2_000_000
		if *full {
			events = 8_000_000
		}
		pb, err := experiments.PipelineThroughput(events, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPipeline(pb))
		// Asking for the pipeline table explicitly always records the
		// numbers for the scaling gate; -table all writes only when
		// -benchout names a file.
		out := *benchout
		if out == "" && *table == "pipeline" {
			out = "BENCH_pipeline.json"
		}
		if out != "" {
			data, err := json.MarshalIndent(pb, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if want("telemetry") {
		section("Telemetry overhead — instrumented vs bare recording path")
		events := 2_000_000
		if *full {
			events = 8_000_000
		}
		tb, err := experiments.TelemetryOverhead(events)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTelemetry(tb))
		// -table all leaves JSON emission to the pipeline table; asking
		// for the telemetry table explicitly always records the numbers.
		out := ""
		if *table == "telemetry" {
			if out = *benchout; out == "" {
				out = "BENCH_telemetry.json"
			}
		}
		if out != "" {
			data, err := json.MarshalIndent(tb, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if want("hotpath") {
		section("Hot path — fused vs legacy update engine")
		packets := 1_000_000
		flows := 100_000
		if *full {
			packets, flows = 4_000_000, 400_000
		}
		hb, err := experiments.HotpathThroughput(packets, flows)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatHotpath(hb))
		// As with the telemetry table, -table all leaves the committed
		// JSON alone; asking for the hotpath table explicitly records it.
		out := ""
		if *table == "hotpath" {
			if out = *benchout; out == "" {
				out = "BENCH_hotpath.json"
			}
		}
		if out != "" {
			data, err := json.MarshalIndent(hb, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if want("cache") {
		section("Flow cache — exact aggregation vs bare fused engine (Zipf traffic)")
		packets := 1_000_000
		flows := 500_000
		if *full {
			packets, flows = 4_000_000, 2_000_000
		}
		cb, err := experiments.CacheThroughput(packets, flows, 1<<14, 1.5)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCache(cb))
		// As with the hotpath table, -table all leaves the committed JSON
		// alone; asking for the cache table explicitly records it.
		out := ""
		if *table == "cache" {
			if out = *benchout; out == "" {
				out = "BENCH_cache.json"
			}
		}
		if out != "" {
			data, err := json.MarshalIndent(cb, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if want("inference") {
		section("Inference — invertible decode vs reverse-hashing search")
		heavy, noise, rounds := 20, 2000, 5
		if *full {
			heavy, noise, rounds = 20, 8000, 9
		}
		ib, err := experiments.InferenceLatency(heavy, noise, rounds)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatInference(ib))
		// As with the hotpath table, -table all leaves the committed JSON
		// alone; asking for the inference table explicitly records it.
		out := ""
		if *table == "inference" {
			if out = *benchout; out == "" {
				out = "BENCH_inference.json"
			}
		}
		if out != "" {
			data, err := json.MarshalIndent(ib, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", out)
		}
	}
	if want("ttd") {
		section("Time to detection (extension; paper §1 motivates early-phase detection)")
		sum, _, err := experiments.TimeToDetection(scale)
		if err != nil {
			return err
		}
		fmt.Printf("attacks detected %d, missed %d; latency mean %.1f intervals, max %d\n",
			sum.Detected, sum.Missed, sum.MeanIntervals, sum.MaxIntervals)
	}
	if want("mit") {
		section("Mitigation closed loop (detection -> enforcement, NU)")
		res, err := experiments.Mitigation(scale)
		if err != nil {
			return err
		}
		fmt.Printf("attack SYNs %d, dropped %d (%.0f%%); benign SYNs %d, dropped %d (%.2f%%); rules %d\n",
			res.AttackSYNs, res.AttackDropped, 100*res.AttackDropRate(),
			res.BenignSYNs, res.BenignDropped, 100*res.BenignDropRate(), res.RulesInstalled)
	}
	if want("scenarios") {
		section("Evasion scenarios — per-detector precision/recall vs EWMA-only (DESIGN.md §17)")
		rows, err := experiments.ScenarioPR(scale.Intervals)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScenarioPR(rows))
	}
	if want("ablation") {
		section("Ablations (DESIGN.md §7)")
		ew, err := experiments.AblationEWMA(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation("EWMA smoothing constant:", ew))
		vf, err := experiments.AblationVerifier(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation("verifier sketches:", vf))
		st, err := experiments.AblationStages(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation("hash stages H:", st))
		ph, err := experiments.AblationPhi(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation("2D concentration φ:", ph))
		th, err := experiments.AblationThreshold(scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatThreshold(th))
		mc, err := experiments.AblationModularVsDirect(2_000_000)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatModularCost(mc))
	}
	return nil
}
