// Livecollector: a complete live pipeline over UDP NetFlow, in one
// process — the deployment shape of the paper's on-site NU experiment
// (§5.1: "the router exports netflow data continuously which is recorded
// with sketches of HiFIND on the fly").
//
// The example starts a UDP collector, plays an exporter against it that
// ships a synthetic trace (background + a SYN flood) as NetFlow v5
// datagrams, and runs detection on short wall-clock intervals. It is the
// template for pointing a real router's `ip flow-export` at HiFIND; see
// also `hifind -listen`.
//
//	go run ./examples/livecollector
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/netflow"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/telemetry"
	"github.com/hifind/hifind/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livecollector:", err)
		os.Exit(1)
	}
}

func run() error {
	// One registry spans the whole pipeline: detector counters, sketch
	// occupancy, and the collector's datagram/parse-error/lag series all
	// land on the same /metrics page while the example runs.
	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())

	det, err := hifind.New(
		hifind.WithCompactSketches(),
		// Each 500ms wall-clock interval replays one simulated minute, so
		// the paper's 1-unresponded-SYN-per-second threshold becomes 120
		// per wall-clock second (= 60 per interval).
		hifind.WithInterval(500*time.Millisecond),
		hifind.WithThresholdPerSecond(120),
		hifind.WithTelemetry(reg),
	)
	if err != nil {
		return err
	}
	edge, err := netmodel.NewEdgeNetwork("129.105.0.0/16")
	if err != nil {
		return err
	}

	// The collector decodes datagrams on its receive goroutine and hands
	// flow summaries to the detector through a channel, keeping the
	// detector single-threaded.
	flows := make(chan hifind.Flow, 4096)
	collector, err := netflow.Listen("127.0.0.1:0", func(r netflow.Record, hdr netflow.Header) {
		fr, ok := netflow.ToFlowRecord(r, hdr, edge)
		if !ok {
			return
		}
		select {
		case flows <- hifind.Flow{
			SrcIP:   netip.AddrFrom4(fr.SrcIP.Octets()),
			DstIP:   netip.AddrFrom4(fr.DstIP.Octets()),
			SrcPort: fr.SrcPort, DstPort: fr.DstPort,
			Dir:  hifind.Direction(fr.Dir),
			SYNs: fr.SYNs, SYNACKs: fr.SYNACKs,
		}:
		default: // drop rather than block the socket
		}
	}, netflow.WithTelemetry(reg))
	if err != nil {
		return err
	}
	defer collector.Close()
	fmt.Printf("collector listening on %s\n", collector.Addr())

	// The "router": exports a 6-interval trace with an embedded spoofed
	// flood, one simulated minute per wall-clock interval.
	cfg := trace.Config{
		Seed:            77,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       6,
		InternalPrefix:  netmodel.MustParseIPv4("129.105.0.0"),
		Servers:         30,
		BackgroundFlows: 600,
		FailRate:        0.04,
	}
	cfg.Attacks = []trace.Attack{{
		Type: trace.SYNFlood, Spoofed: true,
		Victim: netmodel.MustParseIPv4("129.105.77.7"), Ports: []uint16{25},
		StartInterval: 2, EndInterval: 5, Rate: 500, ResponseRate: 0.1,
		Cause: "spoofed flood",
	}}
	gen, err := trace.New(cfg)
	if err != nil {
		return err
	}
	exporter, err := netflow.NewExporter(collector.Addr())
	if err != nil {
		return err
	}
	defer exporter.Close()

	exportErr := make(chan error, 1)
	go func() {
		defer close(exportErr)
		for i := 0; i < cfg.Intervals; i++ {
			pkts, err := gen.GenerateInterval(i)
			if err != nil {
				exportErr <- err
				return
			}
			exporter.SetClock(uint32(i*60000), uint32(cfg.Start.Unix())+uint32(i*60))
			for _, rec := range netflow.FromPackets(pkts, cfg.Start) {
				if err := exporter.Add(rec); err != nil {
					exportErr <- err
					return
				}
			}
			if err := exporter.Flush(); err != nil {
				exportErr <- err
				return
			}
			time.Sleep(det.Interval()) // one simulated minute per interval
		}
	}()

	ticker := time.NewTicker(det.Interval())
	defer ticker.Stop()
	deadline := time.After(time.Duration(cfg.Intervals+2) * det.Interval())
	for {
		select {
		case f := <-flows:
			det.ObserveFlow(f)
		case <-ticker.C:
			res, err := det.EndInterval()
			if err != nil {
				return err
			}
			pkts, recs, _ := collector.Stats()
			fmt.Printf("interval %d: %5d datagrams, %6d records, %d alerts\n",
				res.Interval, pkts, recs, len(res.Final))
			for _, a := range res.Final {
				fmt.Printf("  ALERT %s\n", a)
			}
		case err := <-exportErr:
			if err != nil {
				return err
			}
			exportErr = nil // exporter done; drain remaining intervals
		case <-deadline:
			snap := reg.Snapshot()
			fmt.Printf("done: telemetry saw %v datagrams, %v records, %v parse errors\n",
				snap["netflow_datagrams_total"], snap["netflow_records_total"],
				snap["netflow_parse_errors_total"])
			return nil
		}
	}
}
