// Pcapreplay: generate a capture file and replay it through the detector.
//
// This is the workflow an operator evaluating HiFIND against recorded
// traffic would use: produce (or obtain) a libpcap capture, then replay it
// with ReplayPcap, which drives measurement intervals from the capture's
// own timestamps. The example writes a short NU-like trace with embedded
// attacks to a temporary file and analyzes it, comparing the alerts with
// the trace's ground truth.
//
//	go run ./examples/pcapreplay
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/pcap"
	"github.com/hifind/hifind/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pcapreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Generate a 10-interval NU-like capture.
	cfg := trace.NUConfig(2024, 10, 0.5)
	gen, err := trace.New(cfg)
	if err != nil {
		return err
	}
	path := filepath.Join(os.TempDir(), "hifind-example.pcap")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	w := pcap.NewWriter(bw)
	packets := 0
	if err := gen.Stream(func(p netmodel.Packet) error {
		packets++
		return w.WritePacket(p)
	}); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d packets to %s\n", packets, path)
	defer os.Remove(path)

	// 2. Replay through the detector.
	det, err := hifind.New(hifind.WithCompactSketches())
	if err != nil {
		return err
	}
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()
	results, err := hifind.ReplayPcap(bufio.NewReaderSize(in, 1<<20), []string{"129.105.0.0/16"}, det)
	if err != nil {
		return err
	}

	// 3. Report alerts against the generator's ground truth.
	fmt.Printf("\nground truth: %d injected events (attacks and benign anomalies)\n", len(gen.Attacks()))
	byType := map[hifind.AlertType]int{}
	for _, res := range results {
		for _, a := range res.Final {
			byType[a.Type]++
			fmt.Printf("interval %2d: %s\n", res.Interval, a)
		}
	}
	fmt.Printf("\nalert instances by type: floods=%d hscans=%d vscans=%d over %d intervals\n",
		byType[hifind.SYNFlood], byType[hifind.HorizontalScan], byType[hifind.VerticalScan], len(results))
	return nil
}
