// DoS resilience: attacking the IDS itself (paper §3.5, Table 9).
//
// The example mounts the paper's worst-case attack on the detector: a
// SYN flood with a freshly forged source address on every packet, aimed
// both at a victim and, implicitly, at the IDS's own memory. It runs the
// same stream through:
//
//   - HiFIND (fixed 13.2MB of sketches),
//   - TRW (per-source state — the memory the attack is designed to blow up),
//   - TRW-AC (fixed caches, but aliasing hides concurrent real scans).
//
// A real horizontal scan runs under cover of the flood; the example shows
// HiFIND still isolating it while the baselines degrade.
//
//	go run ./examples/dosresilience
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/hifind/hifind/internal/baseline/trw"
	"github.com/hifind/hifind/internal/baseline/trwac"
	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dosresilience:", err)
		os.Exit(1)
	}
}

func run() error {
	hif, err := core.NewDetector(core.TestRecorderConfig(0xD05), core.DetectorConfig{Threshold: 60})
	if err != nil {
		return err
	}
	trwDet, err := trw.New(trw.DefaultConfig())
	if err != nil {
		return err
	}
	acCfg := trwac.DefaultConfig(0xD05)
	acCfg.ConnCacheBits = 14 // small cache to show saturation quickly
	ac, err := trwac.New(acCfg)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(13))
	victim := netmodel.MustParseIPv4("129.105.70.1")
	scanner := netmodel.MustParseIPv4("203.0.113.200")
	start := time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC)

	const intervals = 5
	fmt.Println("spoofed flood: 20000 forged sources/min; concurrent real scan: 150 probes/min")
	fmt.Println()
	for iv := 0; iv < intervals; iv++ {
		base := start.Add(time.Duration(iv) * time.Minute)
		at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
		feed := func(p netmodel.Packet) {
			hif.Observe(p)
			trwDet.Observe(p)
			ac.Observe(p)
		}
		// Benign baseline plus a trickle of victim responses (it is a
		// real, answering service).
		for i := 0; i < 500; i++ {
			client := netmodel.IPv4(rng.Uint32()|0x08000000) & 0x7fffffff
			ts := at(rng.Intn(60000))
			sport := uint16(30000 + rng.Intn(30000))
			feed(netmodel.Packet{Timestamp: ts, SrcIP: client, DstIP: victim,
				SrcPort: sport, DstPort: 80, Flags: netmodel.FlagSYN, Dir: netmodel.Inbound})
			feed(netmodel.Packet{Timestamp: ts.Add(2 * time.Millisecond), SrcIP: victim, DstIP: client,
				SrcPort: 80, DstPort: sport, Flags: netmodel.FlagSYN | netmodel.FlagACK, Dir: netmodel.Outbound})
		}
		if iv >= 1 {
			for i := 0; i < 20000; i++ { // the IDS-directed spoofed flood
				feed(netmodel.Packet{Timestamp: at(rng.Intn(60000)),
					SrcIP: netmodel.IPv4(rng.Uint32()), DstIP: victim,
					SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 80,
					Flags: netmodel.FlagSYN, Dir: netmodel.Inbound})
			}
			for i := 0; i < 150; i++ { // the real scan hiding underneath
				feed(netmodel.Packet{Timestamp: at(rng.Intn(60000)),
					SrcIP: scanner, DstIP: netmodel.IPv4(0x81690000 + uint32(iv*150+i)),
					SrcPort: uint16(40000 + i), DstPort: 22,
					Flags: netmodel.FlagSYN, Dir: netmodel.Inbound})
			}
		}
		res, err := hif.EndInterval()
		if err != nil {
			return err
		}
		trwDet.EndInterval()

		scanCaught := false
		for _, a := range res.Final {
			if a.Type == core.AlertHScan && a.SIP == scanner {
				scanCaught = true
			}
		}
		// The occupancy diagnostics are the operator-facing version of
		// "fixed memory": under the spoofed flood the sketches fill up —
		// visibly, boundedly — instead of growing. Exported as
		// hifind_sketch_occupancy_ratio when telemetry is attached.
		occ := res.Diag.OccRSSipDip
		if res.Diag.OccRSSipDport > occ {
			occ = res.Diag.OccRSSipDport
		}
		fmt.Printf("interval %d:\n", iv)
		fmt.Printf("  HiFIND: %2d final alerts (scan under flood caught: %v), memory %6.1f MB (fixed), sketch occupancy %4.1f%%\n",
			len(res.Final), scanCaught, float64(hif.Recorder().MemoryBytes())/(1<<20), 100*occ)
		fmt.Printf("  TRW:    %d sources tracked, memory %6.1f MB and growing\n",
			trwDet.TrackedSources(), float64(trwDet.MemoryBytes())/(1<<20))
		fmt.Printf("  TRW-AC: cache %3.0f%% full, %d scan attempts lost to aliasing\n",
			100*ac.ConnCacheFill(), ac.AliasedDrops())
	}

	fmt.Println()
	trwFound, acFound := false, false
	for _, s := range trwDet.Scanners() {
		if s == scanner {
			trwFound = true
		}
	}
	for _, s := range ac.Scanners() {
		if s == scanner {
			acFound = true
		}
	}
	fmt.Printf("scanner %s flagged by: TRW=%v TRW-AC=%v (HiFIND: see per-interval alerts)\n",
		scanner, trwFound, acFound)
	fmt.Println("\nHiFIND's memory never moved; TRW's grew with every forged source;")
	fmt.Println("TRW-AC stayed bounded but its polluted cache swallowed scan evidence.")
	return nil
}
