// Quickstart: feed packets to a HiFIND detector and read the alerts.
//
// The example synthesizes two minutes of benign web traffic with an
// embedded SYN flood and a horizontal scan, closes the measurement
// interval once per simulated minute, and prints what HiFIND found —
// including the attacker/victim addresses recovered by the reversible
// sketches, which is what a mitigation system would act on.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"time"

	hifind "github.com/hifind/hifind"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	det, err := hifind.New(
		hifind.WithCompactSketches(),     // ≈1.5MB instead of the paper's 13.2MB
		hifind.WithThresholdPerSecond(1), // paper default: 1 unresponded SYN/s
		hifind.WithInterval(time.Minute),
	)
	if err != nil {
		return err
	}
	fmt.Printf("detector ready: %.1f MB of sketches, %v intervals\n\n",
		float64(det.MemoryBytes())/(1<<20), det.Interval())

	rng := rand.New(rand.NewSource(42))
	webServer := netip.MustParseAddr("10.1.0.80")
	floodVictim := netip.MustParseAddr("10.1.0.25")
	scanner := netip.MustParseAddr("203.0.113.66")

	for interval := 0; interval < 4; interval++ {
		// Benign traffic: 500 clients complete handshakes with the web
		// server. The SYN and the answering SYN/ACK cancel in every
		// sketch, so this never alarms no matter the volume.
		for i := 0; i < 500; i++ {
			client := randomClient(rng)
			sport := uint16(30000 + rng.Intn(30000))
			det.Observe(hifind.Packet{
				SrcIP: client, DstIP: webServer, SrcPort: sport, DstPort: 80,
				SYN: true, Dir: hifind.Inbound,
			})
			det.Observe(hifind.Packet{
				SrcIP: webServer, DstIP: client, SrcPort: 80, DstPort: sport,
				SYN: true, ACK: true, Dir: hifind.Outbound,
			})
		}
		if interval >= 1 {
			// A spoofed SYN flood: 400 forged sources/minute hammer the
			// mail service; the victim barely answers.
			for i := 0; i < 400; i++ {
				det.Observe(hifind.Packet{
					SrcIP: randomClient(rng), DstIP: floodVictim,
					SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 25,
					SYN: true, Dir: hifind.Inbound,
				})
			}
			// The victim is a real service (it answered earlier), which is
			// what distinguishes a DoS from a misconfiguration.
			det.Observe(hifind.Packet{
				SrcIP: floodVictim, DstIP: randomClient(rng), SrcPort: 25, DstPort: 44444,
				SYN: true, ACK: true, Dir: hifind.Outbound,
			})
			// A horizontal scan: one source probes port 22 across the /16.
			for i := 0; i < 200; i++ {
				dst := netip.AddrFrom4([4]byte{10, 1, byte(i / 250), byte(i%250 + 1)})
				det.Observe(hifind.Packet{
					SrcIP: scanner, DstIP: dst,
					SrcPort: uint16(40000 + i), DstPort: 22,
					SYN: true, Dir: hifind.Inbound,
				})
			}
		}
		res, err := det.EndInterval()
		if err != nil {
			return err
		}
		fmt.Printf("interval %d: %d alert(s)\n", res.Interval, len(res.Final))
		for _, a := range res.Final {
			fmt.Printf("  %s\n", a)
		}
	}
	return nil
}

// randomClient draws a plausible external address.
func randomClient(rng *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{
		byte(20 + rng.Intn(60)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254)),
	})
}
