// Multirouter: aggregated detection over three edge routers (paper §3.1,
// Figure 3 and §5.3.2).
//
// The example reproduces the asymmetric-routing scenario the paper
// motivates: per-packet load balancing sends every packet — including the
// SYN and SYN/ACK of a single connection — through a randomly chosen
// router, so no single vantage point sees a coherent picture. Each router
// runs a recording-only HiFIND instance; once per interval the serialized
// sketch states are shipped (here: over a real TCP connection, using the
// internal aggregation transport via the public API's byte payloads) to a
// central detector that merges them by sketch linearity and detects on
// the whole.
//
// For contrast, the example also runs an independent detector on each
// router alone and shows the attack staying below every per-router
// threshold.
//
// A second act replays the same topology over the real aggregation
// transport — TCP reporters shipping CRC-framed state to a collector —
// and crashes one router mid-run: the collector closes the interval as
// a partial merge at the deadline (detection continues, flagged), then
// recovers to full merges when the router comes back.
//
//	go run ./examples/multirouter
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"time"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/aggregate"
	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/telemetry"
)

const routers = 3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multirouter:", err)
		os.Exit(1)
	}
	if err := faultDemo(); err != nil {
		fmt.Fprintln(os.Stderr, "multirouter:", err)
		os.Exit(1)
	}
}

func run() error {
	// Shared seed ⇒ combinable sketches; that is the only coordination
	// the deployment needs.
	opts := []hifind.Option{hifind.WithCompactSketches(), hifind.WithSeed(0xA66)}

	central, err := hifind.New(opts...)
	if err != nil {
		return err
	}
	edges := make([]*hifind.Recorder, routers)
	solo := make([]*hifind.Detector, routers) // per-router detectors, for contrast
	for i := range edges {
		if edges[i], err = hifind.NewRecorder(opts...); err != nil {
			return err
		}
		if solo[i], err = hifind.New(opts...); err != nil {
			return err
		}
	}

	rng := rand.New(rand.NewSource(7))
	webServer := netip.MustParseAddr("10.9.0.2") // busy benign service
	victim := netip.MustParseAddr("10.9.0.1")    // flooded mail service
	fmt.Println("spoofed SYN flood of 150 SYNs/min split over 3 routers (≈50 each,")
	fmt.Println("below the per-router threshold of 60) — paper Figure 3 topology")
	fmt.Println()

	for interval := 0; interval < 4; interval++ {
		// Background completed handshakes, also split per packet.
		for i := 0; i < 600; i++ {
			client := netip.AddrFrom4([4]byte{byte(30 + rng.Intn(40)), byte(rng.Intn(256)), byte(rng.Intn(256)), 9})
			sport := uint16(30000 + rng.Intn(30000))
			syn := hifind.Packet{SrcIP: client, DstIP: webServer, SrcPort: sport, DstPort: 80,
				SYN: true, Dir: hifind.Inbound}
			ack := hifind.Packet{SrcIP: webServer, DstIP: client, SrcPort: 80, DstPort: sport,
				SYN: true, ACK: true, Dir: hifind.Outbound}
			route(rng, edges, solo, syn)
			route(rng, edges, solo, ack)
		}
		// The victim is a real, answering service (a few legitimate mail
		// connections per minute) — that is what separates a DoS target
		// from a misconfiguration in Phase 3.
		for i := 0; i < 5; i++ {
			client := netip.AddrFrom4([4]byte{byte(30 + rng.Intn(40)), byte(rng.Intn(256)), byte(rng.Intn(256)), 7})
			sport := uint16(30000 + rng.Intn(30000))
			route(rng, edges, solo, hifind.Packet{SrcIP: client, DstIP: victim, SrcPort: sport,
				DstPort: 25, SYN: true, Dir: hifind.Inbound})
			route(rng, edges, solo, hifind.Packet{SrcIP: victim, DstIP: client, SrcPort: 25,
				DstPort: sport, SYN: true, ACK: true, Dir: hifind.Outbound})
		}
		if interval >= 1 {
			for i := 0; i < 150; i++ {
				route(rng, edges, solo, hifind.Packet{
					SrcIP: netip.AddrFrom4([4]byte{byte(60 + rng.Intn(60)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))}),
					DstIP: victim, SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 25,
					SYN: true, Dir: hifind.Inbound,
				})
			}
		}

		// Per-router detection: each vantage point alone.
		perRouter := 0
		for _, d := range solo {
			res, err := d.EndInterval()
			if err != nil {
				return err
			}
			perRouter += len(res.Final)
		}

		// Aggregated detection: ship states, merge, detect.
		states := make([][]byte, routers)
		for i, e := range edges {
			if states[i], err = e.StateSnapshot(); err != nil {
				return err
			}
		}
		res, err := central.EndIntervalMerged(states...)
		if err != nil {
			return err
		}
		fmt.Printf("interval %d: per-router alerts=%d, aggregated alerts=%d\n",
			res.Interval, perRouter, len(res.Final))
		for _, a := range res.Final {
			fmt.Printf("  aggregated: %s\n", a)
		}
	}
	fmt.Println("\nonly the aggregated view, with the linearity-combined sketches,")
	fmt.Println("sees the flood that per-packet load balancing hid from every router")
	return nil
}

// route delivers one packet to a random router (per-packet load
// balancing), to both that router's recorder and its solo detector.
func route(rng *rand.Rand, edges []*hifind.Recorder, solo []*hifind.Detector, p hifind.Packet) {
	r := rng.Intn(routers)
	edges[r].Observe(p)
	solo[r].Observe(p)
}

// faultDemo is act two: the same flood, but shipped over the real TCP
// aggregation transport, with router 2 crashing during interval 2 and
// restarting for interval 3. The collector degrades to a partial merge
// (still detecting, alerts flagged) and recovers to full 3/3 merges.
func faultDemo() error {
	const seed = 0xA66
	rcfg := core.TestRecorderConfig(seed)
	reg := telemetry.NewRegistry()

	// The partial interval is closed by a deterministic trigger, not a
	// timer: once the two surviving routers' interval-2 frames have
	// arrived, the collection deadline fires. The observer runs on the
	// CollectEpoch goroutine, so plain variables are safe.
	seen := 0
	partialDeadline := make(chan time.Time)
	collector, err := aggregate.NewCollector(rcfg, routers, "127.0.0.1:0",
		aggregate.WithTelemetry(reg),
		aggregate.WithFrameObserver(func(router uint32, epoch uint64) {
			if epoch == 3 {
				if seen++; seen == routers-1 {
					close(partialDeadline)
				}
			}
		}))
	if err != nil {
		return err
	}
	defer collector.Close()

	det, err := core.NewDetector(rcfg, core.DetectorConfig{Threshold: 60})
	if err != nil {
		return err
	}
	addr := collector.Addr()
	reps := make([]*aggregate.Reporter, routers)
	recs := make([]*core.Recorder, routers)
	for i := range reps {
		reps[i] = aggregate.NewReporter(uint32(i), addr)
		if recs[i], err = core.NewRecorder(rcfg); err != nil {
			return err
		}
	}
	defer func() {
		for _, rep := range reps {
			rep.Close()
		}
	}()

	fmt.Println("\n--- act two: the same flood over the real TCP transport,")
	fmt.Println("    with router 2 crashing in interval 3, mid-flood ---")
	rng := rand.New(rand.NewSource(7))
	for interval := 0; interval < 5; interval++ {
		if interval == 3 {
			reps[2].Close() // crash: interval 3 recorded state is lost with it
		}
		if interval == 4 {
			reps[2] = aggregate.NewReporter(2, addr) // restart, same router id
		}
		shares := faultDemoTraffic(rng, interval)
		for r, rep := range reps {
			if r == 2 && interval == 3 {
				continue
			}
			for _, p := range shares[r] {
				recs[r].Observe(p)
			}
			if err := rep.Report(uint64(interval), recs[r]); err != nil {
				return err
			}
			recs[r].Reset()
		}
		var deadline <-chan time.Time // nil: full intervals wait for all routers
		if interval == 3 {
			deadline = partialDeadline
		}
		merged, info, err := collector.CollectEpoch(uint64(interval), deadline)
		if err != nil {
			return err
		}
		res, err := det.EndIntervalWithPartial(merged, info.Partial)
		if err != nil {
			return err
		}
		fmt.Printf("interval %d: %d/%d routers, partial=%v, %d alerts\n",
			interval, len(info.Contributors), routers, info.Partial, len(res.Final))
		for _, a := range res.Final {
			flag := ""
			if a.Partial {
				flag = " [partial — magnitude is a lower bound]"
			}
			fmt.Printf("  %s%s\n", a, flag)
		}
	}
	if err := collector.Close(); err != nil {
		return err
	}
	fmt.Printf("transport: reconnects=%d partial_intervals=%d\n",
		reg.Counter("aggregate_reconnects_total", "").Value(),
		reg.Counter("aggregate_partial_intervals_total", "").Value())
	fmt.Println("\nthe crash cost one router's share of one interval — detection")
	fmt.Println("degraded to a flagged lower bound instead of stalling, and the")
	fmt.Println("restarted router resynchronized on the collector's epoch")
	return nil
}

// faultDemoTraffic synthesizes one interval of the act-one topology as
// netmodel packets, already split per-packet across the routers: benign
// web handshakes, a few legitimate mail connections to the victim, and
// from interval 2 on a spoofed SYN flood ramping up each interval.
func faultDemoTraffic(rng *rand.Rand, interval int) [][]netmodel.Packet {
	shares := make([][]netmodel.Packet, routers)
	emit := func(p netmodel.Packet) {
		r := rng.Intn(routers)
		shares[r] = append(shares[r], p)
	}
	web := netmodel.IPv4(0x0A090002)    // 10.9.0.2
	victim := netmodel.IPv4(0x0A090001) // 10.9.0.1
	for i := 0; i < 600; i++ {
		client := netmodel.IPv4(0x1E000000 | uint32(rng.Intn(1<<24)))
		sport := uint16(30000 + rng.Intn(30000))
		emit(netmodel.Packet{SrcIP: client, DstIP: web, SrcPort: sport, DstPort: 80,
			Flags: netmodel.FlagSYN, Dir: netmodel.Inbound})
		emit(netmodel.Packet{SrcIP: web, DstIP: client, SrcPort: 80, DstPort: sport,
			Flags: netmodel.FlagSYN | netmodel.FlagACK, Dir: netmodel.Outbound})
	}
	for i := 0; i < 5; i++ {
		client := netmodel.IPv4(0x1F000000 | uint32(rng.Intn(1<<24)))
		sport := uint16(30000 + rng.Intn(30000))
		emit(netmodel.Packet{SrcIP: client, DstIP: victim, SrcPort: sport, DstPort: 25,
			Flags: netmodel.FlagSYN, Dir: netmodel.Inbound})
		emit(netmodel.Packet{SrcIP: victim, DstIP: client, SrcPort: 25, DstPort: sport,
			Flags: netmodel.FlagSYN | netmodel.FlagACK, Dir: netmodel.Outbound})
	}
	if interval >= 2 {
		// The flood ramps (150, 300, 600 SYNs/interval) the way a botnet
		// spins up; the growing forecast error is what keeps the alert
		// firing even in the interval merged without router 2's share.
		for i := 0; i < 150<<(interval-2); i++ {
			emit(netmodel.Packet{
				SrcIP:   netmodel.IPv4(0x3C000000 | uint32(rng.Intn(1<<24))),
				DstIP:   victim,
				SrcPort: uint16(1024 + rng.Intn(60000)),
				DstPort: 25,
				Flags:   netmodel.FlagSYN,
				Dir:     netmodel.Inbound,
			})
		}
	}
	return shares
}
