// Multirouter: aggregated detection over three edge routers (paper §3.1,
// Figure 3 and §5.3.2).
//
// The example reproduces the asymmetric-routing scenario the paper
// motivates: per-packet load balancing sends every packet — including the
// SYN and SYN/ACK of a single connection — through a randomly chosen
// router, so no single vantage point sees a coherent picture. Each router
// runs a recording-only HiFIND instance; once per interval the serialized
// sketch states are shipped (here: over a real TCP connection, using the
// internal aggregation transport via the public API's byte payloads) to a
// central detector that merges them by sketch linearity and detects on
// the whole.
//
// For contrast, the example also runs an independent detector on each
// router alone and shows the attack staying below every per-router
// threshold.
//
//	go run ./examples/multirouter
package main

import (
	"fmt"
	"math/rand"
	"net/netip"
	"os"

	hifind "github.com/hifind/hifind"
)

const routers = 3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multirouter:", err)
		os.Exit(1)
	}
}

func run() error {
	// Shared seed ⇒ combinable sketches; that is the only coordination
	// the deployment needs.
	opts := []hifind.Option{hifind.WithCompactSketches(), hifind.WithSeed(0xA66)}

	central, err := hifind.New(opts...)
	if err != nil {
		return err
	}
	edges := make([]*hifind.Recorder, routers)
	solo := make([]*hifind.Detector, routers) // per-router detectors, for contrast
	for i := range edges {
		if edges[i], err = hifind.NewRecorder(opts...); err != nil {
			return err
		}
		if solo[i], err = hifind.New(opts...); err != nil {
			return err
		}
	}

	rng := rand.New(rand.NewSource(7))
	webServer := netip.MustParseAddr("10.9.0.2") // busy benign service
	victim := netip.MustParseAddr("10.9.0.1")    // flooded mail service
	fmt.Println("spoofed SYN flood of 150 SYNs/min split over 3 routers (≈50 each,")
	fmt.Println("below the per-router threshold of 60) — paper Figure 3 topology")
	fmt.Println()

	for interval := 0; interval < 4; interval++ {
		// Background completed handshakes, also split per packet.
		for i := 0; i < 600; i++ {
			client := netip.AddrFrom4([4]byte{byte(30 + rng.Intn(40)), byte(rng.Intn(256)), byte(rng.Intn(256)), 9})
			sport := uint16(30000 + rng.Intn(30000))
			syn := hifind.Packet{SrcIP: client, DstIP: webServer, SrcPort: sport, DstPort: 80,
				SYN: true, Dir: hifind.Inbound}
			ack := hifind.Packet{SrcIP: webServer, DstIP: client, SrcPort: 80, DstPort: sport,
				SYN: true, ACK: true, Dir: hifind.Outbound}
			route(rng, edges, solo, syn)
			route(rng, edges, solo, ack)
		}
		// The victim is a real, answering service (a few legitimate mail
		// connections per minute) — that is what separates a DoS target
		// from a misconfiguration in Phase 3.
		for i := 0; i < 5; i++ {
			client := netip.AddrFrom4([4]byte{byte(30 + rng.Intn(40)), byte(rng.Intn(256)), byte(rng.Intn(256)), 7})
			sport := uint16(30000 + rng.Intn(30000))
			route(rng, edges, solo, hifind.Packet{SrcIP: client, DstIP: victim, SrcPort: sport,
				DstPort: 25, SYN: true, Dir: hifind.Inbound})
			route(rng, edges, solo, hifind.Packet{SrcIP: victim, DstIP: client, SrcPort: 25,
				DstPort: sport, SYN: true, ACK: true, Dir: hifind.Outbound})
		}
		if interval >= 1 {
			for i := 0; i < 150; i++ {
				route(rng, edges, solo, hifind.Packet{
					SrcIP: netip.AddrFrom4([4]byte{byte(60 + rng.Intn(60)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))}),
					DstIP: victim, SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 25,
					SYN: true, Dir: hifind.Inbound,
				})
			}
		}

		// Per-router detection: each vantage point alone.
		perRouter := 0
		for _, d := range solo {
			res, err := d.EndInterval()
			if err != nil {
				return err
			}
			perRouter += len(res.Final)
		}

		// Aggregated detection: ship states, merge, detect.
		states := make([][]byte, routers)
		for i, e := range edges {
			if states[i], err = e.StateSnapshot(); err != nil {
				return err
			}
		}
		res, err := central.EndIntervalMerged(states...)
		if err != nil {
			return err
		}
		fmt.Printf("interval %d: per-router alerts=%d, aggregated alerts=%d\n",
			res.Interval, perRouter, len(res.Final))
		for _, a := range res.Final {
			fmt.Printf("  aggregated: %s\n", a)
		}
	}
	fmt.Println("\nonly the aggregated view, with the linearity-combined sketches,")
	fmt.Println("sees the flood that per-packet load balancing hid from every router")
	return nil
}

// route delivers one packet to a random router (per-packet load
// balancing), to both that router's recorder and its solo detector.
func route(rng *rand.Rand, edges []*hifind.Recorder, solo []*hifind.Detector, p hifind.Packet) {
	r := rng.Intn(routers)
	edges[r].Observe(p)
	solo[r].Observe(p)
}
