// Mitigation: closing the loop from detection to enforcement.
//
// The paper's pipeline ends with "mitigate the attacks using the key
// characteristics of the culprit flows revealed by the reversible
// sketches" (§3.1). This example wires a HiFIND detector to the
// mitigation engine: each interval's final alerts install filter rules
// (block the scanner, rate-limit the flooded service), and the next
// interval's traffic passes through the filter before reaching the
// protected network. The printout shows attack traffic collapsing after
// the first detection while benign traffic flows untouched.
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/hifind/hifind/internal/core"
	"github.com/hifind/hifind/internal/mitigate"
	"github.com/hifind/hifind/internal/netmodel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mitigation:", err)
		os.Exit(1)
	}
}

func run() error {
	det, err := core.NewDetector(core.TestRecorderConfig(0x717), core.DetectorConfig{Threshold: 60})
	if err != nil {
		return err
	}
	engine, err := mitigate.New(mitigate.Config{FloodBudget: 50})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(3))
	victim := netmodel.MustParseIPv4("129.105.40.1")
	scanner := netmodel.MustParseIPv4("203.0.113.77")

	for iv := 0; iv < 6; iv++ {
		var offered, delivered, benignDelivered, benignOffered int
		emit := func(p netmodel.Packet, benign bool) {
			offered++
			if benign {
				benignOffered++
			}
			if !engine.Admit(p) { // mitigation filter in front of the edge
				return
			}
			delivered++
			if benign {
				benignDelivered++
			}
			det.Observe(p)
		}
		// Benign answered traffic toward the victim's web service.
		for i := 0; i < 300; i++ {
			client := netmodel.IPv4(0x08000000 + rng.Uint32()%0xffffff)
			sport := uint16(30000 + rng.Intn(30000))
			emit(netmodel.Packet{SrcIP: client, DstIP: victim, SrcPort: sport, DstPort: 80,
				Flags: netmodel.FlagSYN, Dir: netmodel.Inbound}, true)
			det.Observe(netmodel.Packet{SrcIP: victim, DstIP: client, SrcPort: 80, DstPort: sport,
				Flags: netmodel.FlagSYN | netmodel.FlagACK, Dir: netmodel.Outbound})
		}
		if iv >= 1 {
			// Spoofed flood against the victim's mail service (which also
			// answers a trickle so it registers as an active service).
			for i := 0; i < 600; i++ {
				emit(netmodel.Packet{SrcIP: netmodel.IPv4(rng.Uint32()), DstIP: victim,
					SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 25,
					Flags: netmodel.FlagSYN, Dir: netmodel.Inbound}, false)
			}
			det.Observe(netmodel.Packet{SrcIP: victim, DstIP: 0x08000001, SrcPort: 25, DstPort: 44444,
				Flags: netmodel.FlagSYN | netmodel.FlagACK, Dir: netmodel.Outbound})
			// Horizontal scan.
			for i := 0; i < 150; i++ {
				emit(netmodel.Packet{SrcIP: scanner, DstIP: netmodel.IPv4(0x81690000 + uint32(iv*150+i)),
					SrcPort: uint16(40000 + i), DstPort: 22,
					Flags: netmodel.FlagSYN, Dir: netmodel.Inbound}, false)
			}
		}
		res, err := det.EndInterval()
		if err != nil {
			return err
		}
		engine.Apply(res.Final)
		engine.Tick()
		fmt.Printf("interval %d: offered %4d SYN-bearing pkts, delivered %4d (benign %d/%d), alerts %d, rules %d\n",
			iv, offered, delivered, benignDelivered, benignOffered, len(res.Final), len(engine.Rules()))
		for _, r := range engine.Rules() {
			fmt.Printf("  rule: %s\n", r)
		}
	}
	fmt.Printf("\ntotal SYNs dropped by mitigation: %d (benign traffic untouched)\n", engine.Dropped())
	return nil
}
