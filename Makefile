GO ?= go

# Default target: everything CI runs.
.PHONY: check
check: build vet lint lint-fix-audit test race smoke

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

# The facade package replays every golden trace through many engine
# configurations; instrumented it needs more than the default 10m.
.PHONY: race
race:
	$(GO) test -race -timeout 20m ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# hifindlint is this repository's own analyzer (internal/analyze): a
# cross-package dataflow engine enforcing the sketch-path invariants —
# allocation-free UPDATE/ESTIMATE/COMBINE (propagated transitively over
# the call graph), consistent sync/atomic field access, joined library
# goroutines, determinism of estimation and marshal paths, and
# config-derived channel capacities on ingestion paths. Suppress a
# finding with `//lint:ignore <rule> <reason>` on or above the line.
# The -selfcheck run first replays the analyzer's own golden testdata,
# so a broken rule fails lint before it can silently pass the module.
.PHONY: lint
lint:
	$(GO) run ./cmd/hifindlint -selfcheck
	$(GO) run ./cmd/hifindlint ./...

# Fails when any //lint:ignore directive no longer matches a finding:
# the code was fixed or the rule changed, so the suppression is rot and
# must be deleted rather than left to mask a future regression.
.PHONY: lint-fix-audit
lint-fix-audit:
	$(GO) run ./cmd/hifindlint -audit ./...

# Short fuzz pass over the malformed-input surfaces; CI-sized. Leave the
# time off (go test -fuzz=FuzzReadPacket ./internal/pcap) to fuzz for real.
FUZZTIME ?= 10s
.PHONY: fuzz-short
fuzz-short:
	$(GO) test -fuzz FuzzReadPacket -fuzztime $(FUZZTIME) ./internal/pcap
	$(GO) test -fuzz FuzzInference -fuzztime $(FUZZTIME) ./internal/revsketch
	$(GO) test -fuzz FuzzInvertibleDecode -fuzztime $(FUZZTIME) ./internal/invsketch
	$(GO) test -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME) ./internal/aggregate
	$(GO) test -fuzz FuzzObserve -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -fuzz FuzzShardRoute -fuzztime $(FUZZTIME) ./internal/pipeline
	$(GO) test -fuzz FuzzBurstDetect -fuzztime $(FUZZTIME) ./internal/burst
	$(GO) test -fuzz FuzzPersistence -fuzztime $(FUZZTIME) ./internal/persist

# Deterministic fault-injection matrix over the multi-router aggregation
# path: each seed derives a full schedule of connection resets, corrupted
# bytes, chunked and duplicated writes (internal/faultnet), and the
# invariant checked is byte-exactness of every merge over its reported
# contributor set. CI runs seeds 1..3 under -race.
FAULT_SEEDS ?= 1 2 3
.PHONY: fault-matrix
fault-matrix:
	for s in $(FAULT_SEEDS); do \
		FAULT_SEED=$$s $(GO) test -race -run 'TestFaultMatrix|TestCrashReconnectPartialInterval' -count=1 -v ./internal/aggregate || exit 1; \
	done

# End-to-end telemetry smoke test: replays a small synthetic trace with
# the -http endpoints up, checks /metrics and /healthz, and requires a
# clean exit on SIGINT.
.PHONY: smoke
smoke:
	./ci/smoke.sh

.PHONY: bench
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Performance regression gates: re-measure the engine comparisons and
# compare the *speedups* (machine-independent ratios) against the
# committed baselines. The hotpath gate fails on >10% speedup regression
# or if the NetFlow replay collapse drops below 2x; the inference gate
# fails on >10% decode-speedup regression, a decode speedup under 5x, or
# invertible recall below the reverse witness; the cache gate fails on
# >10% speedup regression, a Zipf-traffic packet speedup below 1.5x, or
# a broken byte-identity anchor.
# Refresh the committed baselines with:
#   go run ./cmd/benchtables -table hotpath
#   go run ./cmd/benchtables -table inference
#   go run ./cmd/benchtables -table cache
FRESH_HOTPATH ?= BENCH_hotpath.fresh.json
FRESH_INFERENCE ?= BENCH_inference.fresh.json
FRESH_CACHE ?= BENCH_cache.fresh.json
FRESH_PIPELINE ?= BENCH_pipeline.fresh.json
.PHONY: bench-gate
bench-gate:
	$(GO) run ./cmd/benchtables -table hotpath -benchout $(FRESH_HOTPATH)
	$(GO) run ./cmd/benchgate -baseline BENCH_hotpath.json -fresh $(FRESH_HOTPATH)
	$(GO) run ./cmd/benchtables -table inference -benchout $(FRESH_INFERENCE)
	$(GO) run ./cmd/benchgate -table inference -baseline BENCH_inference.json -fresh $(FRESH_INFERENCE)
	$(GO) run ./cmd/benchtables -table cache -benchout $(FRESH_CACHE)
	$(GO) run ./cmd/benchgate -table cache -baseline BENCH_cache.json -fresh $(FRESH_CACHE)
	$(GO) run ./cmd/benchtables -table pipeline -benchout $(FRESH_PIPELINE)
	$(GO) run ./cmd/benchgate -table pipeline -baseline BENCH_pipeline.json -fresh $(FRESH_PIPELINE)
