//go:build !race

package hifind_test

// See race_enabled_test.go.
const raceEnabled = false
