package hifind_test

// End-to-end detection regression suite: each scenario builds a fully
// deterministic capture with the internal trace generator, replays it
// through the public facade, and compares the complete per-interval alert
// output against a checked-in golden file. Any PR that shifts detection
// behavior — a threshold tweak, a sketch change, a heuristic reorder —
// shows up as a golden diff instead of slipping through silently.
//
// Regenerate after an *intentional* behavior change with:
//
//	go test -run TestGoldenDetection -update .
//
// and review the golden diff like any other code change.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/netmodel"
	"github.com/hifind/hifind/internal/pcap"
	"github.com/hifind/hifind/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden detection files with observed output")

// goldenScenario pairs a trace config with the detector options its
// replay needs: the three evasion scenarios only produce alerts with
// their dedicated detectors switched on, and the benign-only control
// runs with ALL of them on to pin the zero-alert baseline.
type goldenScenario struct {
	cfg  trace.Config
	opts []hifind.Option
}

// options returns the scenario's detector options plus extras, always as
// a fresh slice so callers can append without aliasing.
func (s goldenScenario) options(extra ...hifind.Option) []hifind.Option {
	out := make([]hifind.Option, 0, len(s.opts)+len(extra))
	out = append(out, s.opts...)
	return append(out, extra...)
}

// goldenScenarios is the regression corpus: the two paper-shaped presets,
// a hand-built multi-attack interval, the three evasion scenarios the
// auxiliary detectors exist for, and a benign-only control whose golden
// asserts zero alerts even with every auxiliary detector enabled.
func goldenScenarios() map[string]goldenScenario {
	mixed := trace.Config{
		Seed:            303,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       8,
		InternalPrefix:  0x81690000, // 129.105.0.0
		Servers:         40,
		BackgroundFlows: 600,
		OutboundFlows:   100,
		FailRate:        0.04,
	}
	mixed.Attacks = []trace.Attack{
		{Type: trace.SYNFlood, Spoofed: true, Victim: 0x8169c801, /* 129.105.200.1 */
			Ports: []uint16{80}, StartInterval: 1, EndInterval: 6, Rate: 500,
			ResponseRate: 0.1, Cause: "spoofed flood"},
		{Type: trace.HorizontalScan, Attackers: []netmodel.IPv4{0x0a141401},
			Victim: 0x81698000, Ports: []uint16{445}, Targets: 800,
			StartInterval: 2, EndInterval: 5, Rate: 800, Cause: "worm hscan"},
		{Type: trace.VerticalScan, Attackers: []netmodel.IPv4{0x0a282802},
			Victim: 0x81698010, Ports: verticalPorts(), Targets: 1,
			StartInterval: 3, EndInterval: 6, Rate: 600, Cause: "recon vscan"},
		{Type: trace.BlockScan, Attackers: []netmodel.IPv4{0x0a3c3c03},
			Victim: 0x81698100, Ports: blockPorts(), Targets: 10,
			StartInterval: 2, EndInterval: 6, Rate: 1600, ResponseRate: 0.01,
			Cause: "block sweep"},
	}

	benign := trace.Config{
		Seed:            404,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       8,
		InternalPrefix:  0x81690000,
		Servers:         40,
		BackgroundFlows: 600,
		OutboundFlows:   100,
		FailRate:        0.04,
	}

	allAux := []hifind.Option{
		hifind.WithBurstDetection(trace.BurstSlotCount),
		hifind.WithPersistentFlowDetection(),
		hifind.WithReflectionDetection(),
	}
	return map[string]goldenScenario{
		"nu-preset":     {cfg: trace.NUConfig(101, 10, 0.5)},
		"lbl-preset":    {cfg: trace.LBLConfig(202, 10, 0.5)},
		"mixed-attacks": {cfg: mixed},
		"benign-only":   {cfg: benign, opts: allAux},
		"burst-pulse": {cfg: trace.BurstPulseConfig(505, 8),
			opts: []hifind.Option{hifind.WithBurstDetection(trace.BurstSlotCount)}},
		"stealth-scan": {cfg: trace.StealthScanConfig(606, 9),
			opts: []hifind.Option{hifind.WithPersistentFlowDetection()}},
		"reflection": {cfg: trace.ReflectionConfig(707, 8),
			opts: []hifind.Option{hifind.WithReflectionDetection()}},
	}
}

func verticalPorts() []uint16 {
	ports := make([]uint16, 0, 64)
	for p := uint16(1); p <= 64; p++ {
		ports = append(ports, p)
	}
	return ports
}

// blockPorts is a 10×20 address-by-port block, hot enough per pair and
// per port that the hscan and vscan constituents both fire and merge.
func blockPorts() []uint16 {
	ports := make([]uint16, 20)
	for i := range ports {
		ports[i] = uint16(7000 + i)
	}
	return ports
}

func TestGoldenDetection(t *testing.T) {
	for name, sc := range goldenScenarios() {
		t.Run(name, func(t *testing.T) {
			cfg := sc.cfg
			g, err := trace.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			w := pcap.NewWriter(&buf)
			if err := g.Stream(w.WritePacket); err != nil {
				t.Fatal(err)
			}
			edge := fmt.Sprintf("%s/16", cfg.InternalPrefix)
			d := newCompact(t, sc.options()...)
			results, err := hifind.ReplayPcap(&buf, []string{edge}, d)
			if err != nil {
				t.Fatal(err)
			}
			// Negative control: benign traffic with every auxiliary
			// detector enabled must never produce an auxiliary alert.
			if name == "benign-only" {
				for _, r := range results {
					for _, a := range r.Final {
						switch a.Type {
						case hifind.BurstFlood, hifind.PersistentScan, hifind.Reflection:
							t.Errorf("interval %d: auxiliary alert on benign traffic: %s", r.Interval, a)
						}
					}
				}
			}
			got := formatGolden(results)

			path := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("detection output diverged from %s (rerun with -update only if the change is intentional):\n%s",
					path, goldenDiff(string(want), got))
			}
		})
	}
}

// formatGolden renders replay results into the canonical golden text: one
// header line per interval with the per-phase alert counts, then the
// final alerts sorted lexically (detection order is deterministic, but
// sorting keeps the files stable against harmless reordering).
func formatGolden(results []hifind.Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "interval %d: raw=%d classified=%d final=%d\n",
			r.Interval, len(r.Raw), len(r.AfterClassification), len(r.Final))
		lines := make([]string, 0, len(r.Final))
		for _, a := range r.Final {
			lines = append(lines, a.String())
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	return b.String()
}

// goldenDiff renders a compact first-divergence report; full-file dumps
// drown the signal when one interval shifts.
func goldenDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	max := len(wl)
	if len(gl) > max {
		max = len(gl)
	}
	shown := 0
	for i := 0; i < max && shown < 12; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  golden: %q\n  got:    %q\n", i+1, w, g)
			shown++
		}
	}
	if shown == 0 {
		return "(files differ only in length)"
	}
	return b.String()
}
