package hifind_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/netflow"
	"github.com/hifind/hifind/internal/pcap"
	"github.com/hifind/hifind/internal/trace"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// synIn builds an inbound SYN via the public API.
func synIn(src, dst string, dport uint16) hifind.Packet {
	return hifind.Packet{
		SrcIP: addr(src), DstIP: addr(dst), SrcPort: 40000, DstPort: dport,
		SYN: true, Dir: hifind.Inbound,
	}
}

func synAckOut(server, client string, sport uint16) hifind.Packet {
	return hifind.Packet{
		SrcIP: addr(server), DstIP: addr(client), SrcPort: sport, DstPort: 40000,
		SYN: true, ACK: true, Dir: hifind.Outbound,
	}
}

func newCompact(t *testing.T, opts ...hifind.Option) *hifind.Detector {
	t.Helper()
	d, err := hifind.New(append([]hifind.Option{hifind.WithCompactSketches()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPublicFloodDetection(t *testing.T) {
	d := newCompact(t)
	// Interval 0: background only.
	for i := 0; i < 200; i++ {
		client := fmt.Sprintf("8.8.%d.%d", i/250, i%250+1)
		d.Observe(synIn(client, "129.105.1.1", 80))
		d.Observe(synAckOut("129.105.1.1", client, 80))
	}
	if _, err := d.EndInterval(); err != nil {
		t.Fatal(err)
	}
	// Intervals 1–3: flood of 300 unanswered SYNs/interval (threshold 60).
	var final []hifind.Alert
	for iv := 0; iv < 3; iv++ {
		for i := 0; i < 300; i++ {
			d.Observe(synIn(fmt.Sprintf("20.0.%d.%d", i/200, i%200+1), "129.105.1.1", 80))
		}
		res, err := d.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		final = append(final, res.Final...)
	}
	if len(final) == 0 {
		t.Fatal("flood not detected through the public API")
	}
	a := final[0]
	if a.Type != hifind.SYNFlood || a.Victim != addr("129.105.1.1") || a.Port != 80 {
		t.Errorf("alert = %+v", a)
	}
	if !a.Spoofed {
		t.Error("distributed flood should be unattributed")
	}
	if a.String() == "" {
		t.Error("empty alert rendering")
	}
}

func TestPublicOptionsValidation(t *testing.T) {
	bad := [][]hifind.Option{
		{hifind.WithSeed(0)},
		{hifind.WithInterval(0)},
		{hifind.WithThresholdPerSecond(-1)},
		{hifind.WithAlpha(0)},
		{hifind.WithAlpha(1.5)},
		{hifind.WithQuorum(0)},
		{hifind.WithMaxKeysPerStep(0)},
		{hifind.WithFloodPersistence(0)},
		{hifind.WithMinSynRatio(0.1)},
	}
	for i, opts := range bad {
		if _, err := hifind.New(opts...); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
	if _, err := hifind.NewRecorder(hifind.WithSeed(0)); err == nil {
		t.Error("recorder accepted bad option")
	}
}

func TestThresholdScalesWithInterval(t *testing.T) {
	// 10-second intervals with 1 SYN/s threshold ⇒ per-interval
	// threshold 10; a 30-SYN burst per interval must now trigger.
	d := newCompact(t, hifind.WithInterval(10*time.Second))
	if d.Interval() != 10*time.Second {
		t.Fatal("interval accessor wrong")
	}
	if _, err := d.EndInterval(); err != nil {
		t.Fatal(err)
	}
	var alerts int
	for iv := 0; iv < 3; iv++ {
		for i := 0; i < 30; i++ {
			d.Observe(synIn(fmt.Sprintf("20.1.1.%d", i+1), "129.105.2.2", 443))
		}
		// Keep the victim "active" so phase 3 does not discard it.
		d.Observe(synAckOut("129.105.2.2", "20.1.1.1", 443))
		res, err := d.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		alerts += len(res.Final)
	}
	if alerts == 0 {
		t.Error("threshold did not scale with the shorter interval")
	}
}

func TestNonIPv4Dropped(t *testing.T) {
	d := newCompact(t)
	d.Observe(hifind.Packet{
		SrcIP: addr("2001:db8::1"), DstIP: addr("129.105.1.1"),
		SYN: true, Dir: hifind.Inbound,
	})
	if d.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", d.Dropped())
	}
}

func TestMemoryBytesFixed(t *testing.T) {
	d, err := hifind.New()
	if err != nil {
		t.Fatal(err)
	}
	mb := float64(d.MemoryBytes()) / (1 << 20)
	if mb < 12 || mb > 15 {
		t.Errorf("paper-config memory %.1f MB, want ≈13.2", mb)
	}
	before := d.MemoryBytes()
	for i := 0; i < 10000; i++ {
		d.Observe(synIn(fmt.Sprintf("20.%d.%d.%d", i>>16, (i>>8)&255, (i&255)/2+1), "129.105.1.1", 80))
	}
	if d.MemoryBytes() != before {
		t.Error("memory grew with traffic")
	}
}

func TestMergedDetectionAcrossRecorders(t *testing.T) {
	// An attack split across two edge recorders plus the detector's own
	// traffic is only visible after merging — the public multi-router API.
	seed := hifind.WithSeed(0x1234)
	compact := hifind.WithCompactSketches()
	det := newCompact(t, seed)
	r1, err := hifind.NewRecorder(compact, seed)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := hifind.NewRecorder(compact, seed)
	if err != nil {
		t.Fatal(err)
	}
	endMerged := func() hifind.Result {
		s1, err := r1.StateSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := r2.StateSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.EndIntervalMerged(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	endMerged() // quiet first interval
	var finals []hifind.Alert
	for iv := 0; iv < 3; iv++ {
		// 240 flood SYNs/interval split three ways: 80 each, every share
		// below the 60/interval... no — each share is above. Use 150
		// total: 50 per observer, below threshold individually.
		targets := []func(hifind.Packet){det.Observe, r1.Observe, r2.Observe}
		for i := 0; i < 150; i++ {
			targets[i%3](synIn(fmt.Sprintf("20.2.%d.%d", i/250, i%250+1), "129.105.3.3", 80))
		}
		targets[iv%3](synAckOut("129.105.3.3", "20.2.0.1", 80))
		finals = append(finals, endMerged().Final...)
	}
	if len(finals) == 0 {
		t.Fatal("merged detection missed the split attack")
	}
	if finals[0].Victim != addr("129.105.3.3") {
		t.Errorf("victim = %v", finals[0].Victim)
	}
	if r1.MemoryBytes() == 0 {
		t.Error("recorder memory accessor broken")
	}
}

func TestMergedRejectsGarbageState(t *testing.T) {
	det := newCompact(t)
	if _, err := det.EndIntervalMerged([]byte("junk")); err == nil {
		t.Error("garbage state accepted")
	}
}

func TestReplayPcap(t *testing.T) {
	// Build a small capture with an embedded flood using the internal
	// trace generator and pcap writer, then replay it via the public API.
	cfg := trace.Config{
		Seed:            5,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       5,
		InternalPrefix:  0x81690000, // 129.105.0.0
		Servers:         20,
		BackgroundFlows: 400,
		FailRate:        0.04,
	}
	cfg.Attacks = []trace.Attack{{
		Type: trace.SYNFlood, Spoofed: true, Victim: 0x8169c801, /* 129.105.200.1 */
		Ports: []uint16{80}, StartInterval: 1, EndInterval: 4, Rate: 400,
		ResponseRate: 0.1, Cause: "flood",
	}}
	g, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf)
	if err := g.Stream(w.WritePacket); err != nil {
		t.Fatal(err)
	}

	d := newCompact(t)
	results, err := hifind.ReplayPcap(&buf, []string{"129.105.0.0/16"}, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 4 {
		t.Fatalf("replay produced %d intervals, want ≥4", len(results))
	}
	found := false
	for _, r := range results {
		for _, a := range r.Final {
			if a.Type == hifind.SYNFlood && a.Victim == addr("129.105.200.1") {
				found = true
			}
		}
	}
	if !found {
		t.Error("flood in the capture not detected on replay")
	}
	if _, err := hifind.ReplayPcap(bytes.NewReader(nil), []string{"10.0.0.0/8"}, d); err == nil {
		t.Error("empty capture accepted")
	}
	if _, err := hifind.ReplayPcap(&buf, nil, d); err == nil {
		t.Error("missing edge CIDRs accepted")
	}
}

func TestReplayNetFlow(t *testing.T) {
	// Same scenario as TestReplayPcap but through the NetFlow v5 path,
	// which is how the paper's own evaluation consumed its traces.
	cfg := trace.Config{
		Seed:            6,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       5,
		InternalPrefix:  0x81690000,
		Servers:         20,
		BackgroundFlows: 400,
		FailRate:        0.04,
	}
	cfg.Attacks = []trace.Attack{{
		Type: trace.SYNFlood, Spoofed: true, Victim: 0x8169c802, /* 129.105.200.2 */
		Ports: []uint16{25}, StartInterval: 1, EndInterval: 4, Rate: 400,
		ResponseRate: 0.1, Cause: "flood",
	}}
	g, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := netflow.NewWriter(&buf, cfg.Start)
	for i := 0; i < cfg.Intervals; i++ {
		pkts, err := g.GenerateInterval(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range netflow.FromPackets(pkts, cfg.Start) {
			ts := cfg.Start.Add(time.Duration(rec.LastMs) * time.Millisecond)
			if err := w.Add(rec, ts); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	d := newCompact(t)
	results, err := hifind.ReplayNetFlow(&buf, []string{"129.105.0.0/16"}, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 4 {
		t.Fatalf("netflow replay produced %d intervals", len(results))
	}
	found := false
	for _, r := range results {
		for _, a := range r.Final {
			if a.Type == hifind.SYNFlood && a.Victim == addr("129.105.200.2") && a.Port == 25 {
				found = true
			}
		}
	}
	if !found {
		t.Error("flood in the NetFlow stream not detected")
	}
	if _, err := hifind.ReplayNetFlow(bytes.NewReader([]byte{1, 2, 3}), []string{"10.0.0.0/8"}, d); err == nil {
		t.Error("garbage netflow accepted")
	}
	if _, err := hifind.ReplayNetFlow(&buf, nil, d); err == nil {
		t.Error("missing edge CIDRs accepted")
	}
}

func TestEgressOptionThroughPublicAPI(t *testing.T) {
	d, err := hifind.New(hifind.WithCompactSketches(), hifind.WithEgressMonitoring())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.EndInterval(); err != nil {
		t.Fatal(err)
	}
	var alerts []hifind.Alert
	for iv := 0; iv < 3; iv++ {
		for i := 0; i < 200; i++ {
			// Internal host scanning outward, unanswered.
			d.Observe(hifind.Packet{
				SrcIP:   addr("129.105.7.7"),
				DstIP:   netip.AddrFrom4([4]byte{10, 0, byte(iv), byte(i%250 + 1)}),
				SrcPort: uint16(40000 + i), DstPort: 445,
				SYN: true, Dir: hifind.Outbound,
			})
		}
		res, err := d.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		alerts = append(alerts, res.Final...)
	}
	found := false
	for _, a := range alerts {
		if a.Type == hifind.HorizontalScan && a.Attacker == addr("129.105.7.7") {
			found = true
		}
	}
	if !found {
		t.Error("egress detector missed the internal scanner via the public API")
	}
}

func TestObserveFlowEquivalence(t *testing.T) {
	// Flow-record input must drive detection like the equivalent packets.
	d := newCompact(t, hifind.WithSeed(0x2222))
	if _, err := d.EndInterval(); err != nil {
		t.Fatal(err)
	}
	var finals []hifind.Alert
	for iv := 0; iv < 3; iv++ {
		for i := 0; i < 200; i++ {
			d.ObserveFlow(hifind.Flow{
				SrcIP: netip.AddrFrom4([4]byte{20, 3, byte(i / 250), byte(i%250 + 1)}),
				DstIP: addr("129.105.8.8"), SrcPort: uint16(3000 + i), DstPort: 443,
				Dir: hifind.Inbound, SYNs: 1,
			})
		}
		// The victim answers one legitimate client so the active-service
		// filter keeps the alert.
		d.ObserveFlow(hifind.Flow{
			SrcIP: addr("129.105.8.8"), DstIP: addr("20.3.0.1"),
			SrcPort: 443, DstPort: 3000, Dir: hifind.Outbound, SYNACKs: 1,
		})
		res, err := d.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		finals = append(finals, res.Final...)
	}
	if len(finals) == 0 {
		t.Fatal("flow-record input produced no detection")
	}
	if finals[0].Victim != addr("129.105.8.8") || finals[0].Port != 443 {
		t.Errorf("alert = %+v", finals[0])
	}
	// Non-IPv4 flows drop.
	d.ObserveFlow(hifind.Flow{SrcIP: addr("2001:db8::1"), DstIP: addr("10.0.0.1"), SYNs: 1})
	if d.Dropped() == 0 {
		t.Error("non-IPv4 flow not counted as dropped")
	}
}

func TestReplayPcapNGAutoDetect(t *testing.T) {
	// A pcapng stream through the same public entry point: one SHB + IDB,
	// then the trace frames as enhanced packet blocks.
	cfg := trace.Config{
		Seed:            8,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       4,
		InternalPrefix:  0x81690000,
		Servers:         15,
		BackgroundFlows: 300,
		FailRate:        0.04,
	}
	cfg.Attacks = []trace.Attack{{
		Type: trace.SYNFlood, Spoofed: true, Victim: 0x8169c803,
		Ports: []uint16{80}, StartInterval: 1, EndInterval: 3, Rate: 400,
		ResponseRate: 0.1, Cause: "flood",
	}}
	g, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcap.NewNGWriter(&buf)
	if err := g.Stream(w.WritePacket); err != nil {
		t.Fatal(err)
	}
	d := newCompact(t)
	results, err := hifind.ReplayPcap(&buf, []string{"129.105.0.0/16"}, d)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		for _, a := range r.Final {
			if a.Type == hifind.SYNFlood && a.Victim == addr("129.105.200.3") {
				found = true
			}
		}
	}
	if !found {
		t.Error("flood in pcapng capture not detected")
	}
}

func TestReplayPcapContextCancel(t *testing.T) {
	// A canceled context must stop the replay promptly AND flush the
	// partial interval through detection — the graceful-shutdown
	// contract cmd/hifind relies on. The trace is sized well past the
	// context-check stride so cancellation triggers mid-replay.
	cfg := trace.Config{
		Seed:            6,
		Start:           time.Date(2005, 5, 10, 0, 0, 0, 0, time.UTC),
		Interval:        time.Minute,
		Intervals:       3,
		InternalPrefix:  0x81690000,
		Servers:         20,
		BackgroundFlows: 4000,
		FailRate:        0.04,
	}
	g, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf)
	if err := g.Stream(w.WritePacket); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := newCompact(t)
	results, err := hifind.ReplayPcapContext(ctx, &buf, []string{"129.105.0.0/16"}, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) == 0 {
		t.Fatal("canceled replay must still flush the partial interval")
	}
	// An un-canceled context replays to completion with a nil error.
	d2 := newCompact(t)
	var buf2 bytes.Buffer
	w2 := pcap.NewWriter(&buf2)
	g2, err := trace.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Stream(w2.WritePacket); err != nil {
		t.Fatal(err)
	}
	full, err := hifind.ReplayPcapContext(context.Background(), &buf2, []string{"129.105.0.0/16"}, d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(results) {
		t.Fatalf("full replay yielded %d intervals, canceled %d — cancellation had no effect", len(full), len(results))
	}
}
