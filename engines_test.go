package hifind_test

// Facade-level differential suite for the fused update engine: every
// golden scenario is replayed through four detector variants — fused
// and legacy, sequential and sharded — and the complete per-interval
// alert output must agree exactly. Together with the byte-identity
// tests in internal/core this proves the fused engine changes only
// speed, never detection behavior, on the same traces the golden
// regression suite pins.

import (
	"bytes"
	"fmt"
	"testing"

	hifind "github.com/hifind/hifind"
	"github.com/hifind/hifind/internal/pcap"
	"github.com/hifind/hifind/internal/trace"
)

func TestEngineDifferentialGoldenTraces(t *testing.T) {
	for name, sc := range goldenScenarios() {
		t.Run(name, func(t *testing.T) {
			cfg := sc.cfg
			g, err := trace.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			w := pcap.NewWriter(&buf)
			if err := g.Stream(w.WritePacket); err != nil {
				t.Fatal(err)
			}
			capture := buf.Bytes()
			edge := []string{fmt.Sprintf("%s/16", cfg.InternalPrefix)}

			variants := []struct {
				name   string
				replay func(t *testing.T) string
			}{
				{"fused-sequential", func(t *testing.T) string {
					return replayGolden(t, capture, edge, newCompact(t, sc.options()...))
				}},
				{"legacy-sequential", func(t *testing.T) string {
					return replayGolden(t, capture, edge,
						newCompact(t, sc.options(hifind.WithLegacyEngine())...))
				}},
				{"fused-workers-3", func(t *testing.T) string {
					p := newParallelCompact(t, sc.options(
						hifind.WithWorkers(3), hifind.WithBatchSize(64))...)
					defer p.Close()
					return replayGolden(t, capture, edge, p)
				}},
				{"legacy-workers-3", func(t *testing.T) string {
					p := newParallelCompact(t, sc.options(hifind.WithWorkers(3),
						hifind.WithBatchSize(64), hifind.WithLegacyEngine())...)
					defer p.Close()
					return replayGolden(t, capture, edge, p)
				}},
			}
			want := variants[0].replay(t)
			if name != "benign-only" && want == "" {
				t.Fatal("baseline variant produced no output; the equivalence would be vacuous")
			}
			for _, v := range variants[1:] {
				if got := v.replay(t); got != want {
					t.Errorf("%s diverged from fused-sequential:\n%s", v.name, goldenDiff(want, got))
				}
			}
		})
	}
}

func replayGolden(t *testing.T, capture []byte, edge []string, d hifind.Replayable) string {
	t.Helper()
	results, err := hifind.ReplayPcap(bytes.NewReader(capture), edge, d)
	if err != nil {
		t.Fatal(err)
	}
	return formatGolden(results)
}
